package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAABBExtendContains(t *testing.T) {
	b := EmptyAABB()
	if !b.IsEmpty() {
		t.Error("EmptyAABB should be empty")
	}
	b.Extend(V3(1, 2, 3))
	b.Extend(V3(-1, 0, 5))
	if b.IsEmpty() {
		t.Error("box should not be empty after Extend")
	}
	if !b.Contains(V3(0, 1, 4)) {
		t.Error("box should contain interior point")
	}
	if b.Contains(V3(2, 1, 4)) {
		t.Error("box should not contain exterior point")
	}
	if got := b.Size(); !got.Eq(V3(2, 2, 2), 1e-15) {
		t.Errorf("Size = %v", got)
	}
	if got := b.Volume(); !ApproxEq(got, 8, 1e-12) {
		t.Errorf("Volume = %v", got)
	}
	if got := b.Center(); !got.Eq(V3(0, 1, 4), 1e-15) {
		t.Errorf("Center = %v", got)
	}
}

func TestAABBUnion(t *testing.T) {
	a := AABB{Min: V3(0, 0, 0), Max: V3(1, 1, 1)}
	b := AABB{Min: V3(2, -1, 0), Max: V3(3, 0.5, 2)}
	u := a.Union(b)
	if !u.Contains(V3(0.5, 0.5, 0.5)) || !u.Contains(V3(2.5, 0, 1)) {
		t.Error("union should contain both boxes")
	}
}

func TestSegment2Closest(t *testing.T) {
	s := Segment2{V2(0, 0), V2(10, 0)}
	if got := s.ClosestPoint(V2(5, 3)); !got.Eq(V2(5, 0), 1e-12) {
		t.Errorf("ClosestPoint = %v", got)
	}
	if got := s.ClosestPoint(V2(-4, 3)); !got.Eq(V2(0, 0), 1e-12) {
		t.Errorf("ClosestPoint clamps to A: %v", got)
	}
	if got := s.Dist(V2(5, 3)); !ApproxEq(got, 3, 1e-12) {
		t.Errorf("Dist = %v", got)
	}
	// Degenerate segment.
	d := Segment2{V2(1, 1), V2(1, 1)}
	if got := d.Dist(V2(4, 5)); !ApproxEq(got, 5, 1e-12) {
		t.Errorf("degenerate Dist = %v", got)
	}
}

func TestPlaneSignedDist(t *testing.T) {
	pl := PlaneZ(2)
	if got := pl.SignedDist(V3(0, 0, 5)); !ApproxEq(got, 3, 1e-15) {
		t.Errorf("SignedDist = %v", got)
	}
	if got := pl.SignedDist(V3(0, 0, -1)); !ApproxEq(got, -3, 1e-15) {
		t.Errorf("SignedDist = %v", got)
	}
}

func TestTriangleNormalAreaCentroid(t *testing.T) {
	tr := Triangle{V3(0, 0, 0), V3(2, 0, 0), V3(0, 2, 0)}
	if got := tr.Normal(); !got.Eq(V3(0, 0, 1), 1e-12) {
		t.Errorf("Normal = %v", got)
	}
	if got := tr.Area(); !ApproxEq(got, 2, 1e-12) {
		t.Errorf("Area = %v", got)
	}
	if got := tr.Centroid(); !got.Eq(V3(2.0/3, 2.0/3, 0), 1e-12) {
		t.Errorf("Centroid = %v", got)
	}
}

func TestTriangleDegenerate(t *testing.T) {
	if !(Triangle{V3(0, 0, 0), V3(0, 0, 0), V3(1, 0, 0)}).IsDegenerate(1e-9) {
		t.Error("repeated vertex should be degenerate")
	}
	if !(Triangle{V3(0, 0, 0), V3(1, 0, 0), V3(2, 0, 0)}).IsDegenerate(1e-9) {
		t.Error("collinear triangle should be degenerate")
	}
	if (Triangle{V3(0, 0, 0), V3(1, 0, 0), V3(0, 1, 0)}).IsDegenerate(1e-9) {
		t.Error("proper triangle should not be degenerate")
	}
}

func TestTriangleIntersectPlaneZ(t *testing.T) {
	tr := Triangle{V3(0, 0, 0), V3(2, 0, 2), V3(0, 2, 2)}
	p, q, ok := tr.IntersectPlaneZ(1)
	if !ok {
		t.Fatal("expected intersection")
	}
	if !ApproxEq(p.Z, 1, 1e-12) || !ApproxEq(q.Z, 1, 1e-12) {
		t.Errorf("intersection not on plane: %v %v", p, q)
	}
	// Entirely above.
	if _, _, ok := tr.IntersectPlaneZ(-1); ok {
		t.Error("no intersection expected below")
	}
	// Entirely below.
	if _, _, ok := tr.IntersectPlaneZ(3); ok {
		t.Error("no intersection expected above")
	}
	// Coplanar triangle is not a transversal crossing.
	flat := Triangle{V3(0, 0, 1), V3(1, 0, 1), V3(0, 1, 1)}
	if _, _, ok := flat.IntersectPlaneZ(1); ok {
		t.Error("coplanar triangle should not intersect transversally")
	}
}

func TestTriangleVertexOnPlane(t *testing.T) {
	// One vertex exactly on the plane, others on opposite sides.
	tr := Triangle{V3(0, 0, 0), V3(2, 0, 1), V3(-1, 1, -1)}
	p, q, ok := tr.IntersectPlaneZ(0)
	if !ok {
		t.Fatal("expected intersection through vertex")
	}
	if !ApproxEq(p.Z, 0, 1e-12) || !ApproxEq(q.Z, 0, 1e-12) {
		t.Errorf("intersection not on plane: %v %v", p, q)
	}
}

// Property: the intersection segment endpoints always lie on the plane and
// inside the triangle's bounding box.
func TestIntersectPlaneZProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz, h float64) bool {
		tr := Triangle{
			V3(clampMag(ax), clampMag(ay), clampMag(az)),
			V3(clampMag(bx), clampMag(by), clampMag(bz)),
			V3(clampMag(cx), clampMag(cy), clampMag(cz)),
		}
		h = clampMag(h)
		p, q, ok := tr.IntersectPlaneZ(h)
		if !ok {
			return true
		}
		b := tr.Bounds()
		tol := 1e-6 * (1 + b.Size().Len())
		grow := V3(tol, tol, tol)
		bb := AABB{Min: b.Min.Sub(grow), Max: b.Max.Add(grow)}
		return math.Abs(p.Z-h) <= tol && math.Abs(q.Z-h) <= tol &&
			bb.Contains(p) && bb.Contains(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedVolumeCube(t *testing.T) {
	// A unit cube built from 12 outward-oriented triangles has volume 1.
	v := []Vec3{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
	}
	quads := [][4]int{
		{3, 2, 1, 0}, // bottom (z=0), outward -Z
		{4, 5, 6, 7}, // top (z=1), outward +Z
		{0, 1, 5, 4}, // front (y=0)
		{2, 3, 7, 6}, // back (y=1)
		{1, 2, 6, 5}, // right (x=1)
		{3, 0, 4, 7}, // left (x=0)
	}
	var vol float64
	for _, q := range quads {
		t1 := Triangle{v[q[0]], v[q[1]], v[q[2]]}
		t2 := Triangle{v[q[0]], v[q[2]], v[q[3]]}
		vol += t1.SignedVolume() + t2.SignedVolume()
	}
	if !ApproxEq(vol, 1, 1e-12) {
		t.Errorf("cube signed volume = %v, want 1", vol)
	}
}
