package geom

import "math"

// Polygon is a closed 2D loop of vertices. The closing edge from the last
// vertex back to the first is implicit. Positive signed area means
// counter-clockwise orientation.
type Polygon []Vec2

// SignedArea returns the signed area of the polygon (shoelace formula).
// Counter-clockwise loops have positive area.
func (p Polygon) SignedArea() float64 {
	var a float64
	n := len(p)
	if n < 3 {
		return 0
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += p[i].Cross(p[j])
	}
	return a / 2
}

// Area returns the absolute area of the polygon.
func (p Polygon) Area() float64 { return math.Abs(p.SignedArea()) }

// IsCCW reports whether the polygon winds counter-clockwise.
func (p Polygon) IsCCW() bool { return p.SignedArea() > 0 }

// Reversed returns a copy of the polygon with opposite winding.
func (p Polygon) Reversed() Polygon {
	r := make(Polygon, len(p))
	for i, v := range p {
		r[len(p)-1-i] = v
	}
	return r
}

// Perimeter returns the total edge length including the closing edge.
func (p Polygon) Perimeter() float64 {
	var l float64
	n := len(p)
	for i := 0; i < n; i++ {
		l += p[i].Dist(p[(i+1)%n])
	}
	return l
}

// Centroid returns the area centroid of the polygon.
func (p Polygon) Centroid() Vec2 {
	var cx, cy, a float64
	n := len(p)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		cross := p[i].Cross(p[j])
		cx += (p[i].X + p[j].X) * cross
		cy += (p[i].Y + p[j].Y) * cross
		a += cross
	}
	if a == 0 {
		// Degenerate: fall back to vertex average.
		var s Vec2
		for _, v := range p {
			s = s.Add(v)
		}
		return s.Scale(1 / float64(len(p)))
	}
	return Vec2{cx / (3 * a), cy / (3 * a)}
}

// Bounds2 is a 2D axis-aligned bounding box.
type Bounds2 struct {
	Min, Max Vec2
}

// ContainsPoint reports whether q lies inside the closed box. Every point
// outside the bounding box of a closed loop has winding number zero, which
// is what makes the box a safe reject test for the winding probes.
func (b Bounds2) ContainsPoint(q Vec2) bool {
	return q.X >= b.Min.X && q.X <= b.Max.X && q.Y >= b.Min.Y && q.Y <= b.Max.Y
}

// Overlaps reports whether the two closed boxes share at least one point.
func (b Bounds2) Overlaps(o Bounds2) bool {
	return b.Min.X <= o.Max.X && o.Min.X <= b.Max.X &&
		b.Min.Y <= o.Max.Y && o.Min.Y <= b.Max.Y
}

// DistSq returns the squared distance from q to the closed box (zero
// inside). It lower-bounds the squared distance from q to anything the box
// contains, so distance searches can prune whole boxes against the best
// squared distance found so far without changing their result.
func (b Bounds2) DistSq(q Vec2) float64 {
	var dx, dy float64
	if q.X < b.Min.X {
		dx = b.Min.X - q.X
	} else if q.X > b.Max.X {
		dx = q.X - b.Max.X
	}
	if q.Y < b.Min.Y {
		dy = b.Min.Y - q.Y
	} else if q.Y > b.Max.Y {
		dy = q.Y - b.Max.Y
	}
	return dx*dx + dy*dy
}

// Bounds returns the polygon's bounding box.
func (p Polygon) Bounds() Bounds2 {
	inf := math.Inf(1)
	b := Bounds2{Min: Vec2{inf, inf}, Max: Vec2{-inf, -inf}}
	for _, v := range p {
		b.Min.X = math.Min(b.Min.X, v.X)
		b.Min.Y = math.Min(b.Min.Y, v.Y)
		b.Max.X = math.Max(b.Max.X, v.X)
		b.Max.Y = math.Max(b.Max.Y, v.Y)
	}
	return b
}

// WindingNumber returns the winding number of the polygon around point q.
// Zero means outside for simple polygons.
func (p Polygon) WindingNumber(q Vec2) int {
	w := 0
	n := len(p)
	for i := 0; i < n; i++ {
		a := p[i]
		b := p[(i+1)%n]
		if a.Y <= q.Y {
			if b.Y > q.Y && b.Sub(a).Cross(q.Sub(a)) > 0 {
				w++
			}
		} else {
			if b.Y <= q.Y && b.Sub(a).Cross(q.Sub(a)) < 0 {
				w--
			}
		}
	}
	return w
}

// Contains reports whether q lies strictly inside the polygon under the
// non-zero winding rule.
func (p Polygon) Contains(q Vec2) bool { return p.WindingNumber(q) != 0 }

// DistToBoundary returns the distance from q to the polygon boundary.
func (p Polygon) DistToBoundary(q Vec2) float64 {
	best := math.Inf(1)
	n := len(p)
	for i := 0; i < n; i++ {
		d := (Segment2{p[i], p[(i+1)%n]}).Dist(q)
		if d < best {
			best = d
		}
	}
	return best
}

// MinDist returns the minimum distance between the boundaries of p and o.
func (p Polygon) MinDist(o Polygon) float64 {
	best := math.Inf(1)
	for _, v := range p {
		if d := o.DistToBoundary(v); d < best {
			best = d
		}
	}
	for _, v := range o {
		if d := p.DistToBoundary(v); d < best {
			best = d
		}
	}
	return best
}

// Simplify removes consecutive vertices closer than tol and collinear
// vertices whose removal changes the outline by less than tol.
func (p Polygon) Simplify(tol float64) Polygon {
	if len(p) < 3 {
		return p
	}
	out := make(Polygon, 0, len(p))
	for _, v := range p {
		if len(out) > 0 && out[len(out)-1].Eq(v, tol) {
			continue
		}
		out = append(out, v)
	}
	// Drop a duplicated closing vertex.
	for len(out) >= 2 && out[0].Eq(out[len(out)-1], tol) {
		out = out[:len(out)-1]
	}
	if len(out) < 3 {
		return out
	}
	// Remove near-collinear vertices. Each candidate is tested against
	// the segment from the last *kept* vertex to its next original
	// neighbour, so cumulative drift stays bounded by tol (testing
	// against original neighbours would let cascaded removals flatten
	// genuine curvature).
	res := make(Polygon, 0, len(out))
	res = append(res, out[0])
	n := len(out)
	for i := 1; i < n; i++ {
		cur := out[i]
		next := out[(i+1)%n]
		last := res[len(res)-1]
		if (Segment2{A: last, B: next}).Dist(cur) > tol {
			res = append(res, cur)
		}
	}
	if len(res) < 3 {
		return out
	}
	return res
}

// Inset returns the polygon offset inward by distance d (for CCW
// polygons; CW polygons are offset outward by symmetry). Vertices move
// along their angle bisectors with miter limiting. ok is false when the
// inset degenerates (too narrow a region, flipped orientation or
// collapsed area).
func (p Polygon) Inset(d float64) (Polygon, bool) {
	n := len(p)
	if n < 3 || d <= 0 {
		return nil, false
	}
	out := make(Polygon, 0, n)
	const miterLimit = 4.0
	for i := 0; i < n; i++ {
		prev := p[(i-1+n)%n]
		cur := p[i]
		next := p[(i+1)%n]
		d1 := cur.Sub(prev).Normalized()
		d2 := next.Sub(cur).Normalized()
		// Inward normals for a CCW polygon are the left-hand perps.
		n1 := d1.Perp()
		n2 := d2.Perp()
		bis := n1.Add(n2)
		l := bis.Len()
		if l < 1e-12 {
			// 180-degree reversal: fall back to a single normal.
			bis = n1
			l = 1
		}
		bis = bis.Scale(1 / l)
		// Miter length: d / cos(half angle); cos = bis·n1.
		c := bis.Dot(n1)
		scale := d
		if c > 1e-6 {
			scale = d / c
		}
		if scale > miterLimit*d {
			scale = miterLimit * d
		}
		out = append(out, cur.Add(bis.Scale(scale)))
	}
	out = out.Simplify(1e-9)
	if len(out) < 3 {
		return nil, false
	}
	a0 := p.SignedArea()
	a1 := out.SignedArea()
	// The inset must preserve orientation and strictly shrink.
	if a0 > 0 && (a1 <= 0 || a1 >= a0) {
		return nil, false
	}
	// CW polygons offset outward, so their (negative) area must grow in
	// magnitude.
	if a0 < 0 && (a1 >= 0 || a1 >= a0) {
		return nil, false
	}
	return out, true
}

// Translate returns the polygon shifted by d.
func (p Polygon) Translate(d Vec2) Polygon {
	out := make(Polygon, len(p))
	for i, v := range p {
		out[i] = v.Add(d)
	}
	return out
}

// PolygonSet is a collection of loops forming a region; outer loops wind
// CCW and holes wind CW by convention, making the non-zero winding rule
// equivalent to the intuitive filled region.
type PolygonSet []Polygon

// WindingNumber returns the summed winding number of all loops around q.
func (s PolygonSet) WindingNumber(q Vec2) int {
	w := 0
	for _, p := range s {
		w += p.WindingNumber(q)
	}
	return w
}

// ContainsNonZero reports whether q is inside the region under the
// non-zero winding rule.
func (s PolygonSet) ContainsNonZero(q Vec2) bool { return s.WindingNumber(q) != 0 }

// ContainsEvenOdd reports whether q is inside the region under the
// even-odd (parity) rule, the rule many slicers apply to raw STL shells.
func (s PolygonSet) ContainsEvenOdd(q Vec2) bool {
	crossings := 0
	for _, p := range s {
		crossings += p.WindingNumber(q)
	}
	// Parity of total winding equals parity of crossings for our loops.
	return crossings%2 != 0
}

// Area returns the net signed area of the set (holes subtract).
func (s PolygonSet) Area() float64 {
	var a float64
	for _, p := range s {
		a += p.SignedArea()
	}
	return a
}

// Bounds returns the bounding box of all loops.
func (s PolygonSet) Bounds() Bounds2 {
	inf := math.Inf(1)
	b := Bounds2{Min: Vec2{inf, inf}, Max: Vec2{-inf, -inf}}
	for _, p := range s {
		pb := p.Bounds()
		b.Min.X = math.Min(b.Min.X, pb.Min.X)
		b.Min.Y = math.Min(b.Min.Y, pb.Min.Y)
		b.Max.X = math.Max(b.Max.X, pb.Max.X)
		b.Max.Y = math.Max(b.Max.Y, pb.Max.Y)
	}
	return b
}
