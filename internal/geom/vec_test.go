package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec2Basics(t *testing.T) {
	a := V2(3, 4)
	b := V2(-1, 2)
	if got := a.Add(b); got != V2(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V2(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := a.Dot(b); got != 5 {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := a.Cross(b); got != 10 {
		t.Errorf("Cross = %v, want 10", got)
	}
	if got := a.Normalized().Len(); !ApproxEq(got, 1, 1e-12) {
		t.Errorf("Normalized length = %v", got)
	}
	if got := V2(0, 0).Normalized(); got != V2(0, 0) {
		t.Errorf("zero Normalized = %v", got)
	}
}

func TestVec2Perp(t *testing.T) {
	a := V2(2, 1)
	p := a.Perp()
	if !ApproxEq(a.Dot(p), 0, 1e-15) {
		t.Errorf("Perp not orthogonal: %v", a.Dot(p))
	}
	if a.Cross(p) <= 0 {
		t.Errorf("Perp should rotate CCW")
	}
}

func TestVec3Basics(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(4, 5, 6)
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	c := a.Cross(b)
	if !ApproxEq(c.Dot(a), 0, 1e-12) || !ApproxEq(c.Dot(b), 0, 1e-12) {
		t.Errorf("Cross not orthogonal: %v", c)
	}
	if got := V3(3, 4, 12).Len(); got != 13 {
		t.Errorf("Len = %v, want 13", got)
	}
	if got := a.Lerp(b, 0.5); !got.Eq(V3(2.5, 3.5, 4.5), 1e-12) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestVec3MinMaxAbs(t *testing.T) {
	a := V3(1, -5, 3)
	b := V3(-2, 4, 3)
	if got := a.Min(b); got != V3(-2, -5, 3) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V3(1, 4, 3) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Abs(); got != V3(1, 5, 3) {
		t.Errorf("Abs = %v", got)
	}
}

func TestVec3Angle(t *testing.T) {
	if got := V3(1, 0, 0).Angle(V3(0, 1, 0)); !ApproxEq(got, math.Pi/2, 1e-12) {
		t.Errorf("Angle = %v", got)
	}
	if got := V3(1, 1, 0).Angle(V3(2, 2, 0)); !ApproxEq(got, 0, 1e-7) {
		t.Errorf("parallel Angle = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

// Property: cross product is anti-commutative and orthogonal to operands.
func TestCrossProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3(clampMag(ax), clampMag(ay), clampMag(az))
		b := V3(clampMag(bx), clampMag(by), clampMag(bz))
		c := a.Cross(b)
		d := b.Cross(a)
		scale := math.Max(1, a.Len()*b.Len())
		return c.Add(d).Len() <= 1e-9*scale &&
			math.Abs(c.Dot(a)) <= 1e-6*scale*scale &&
			math.Abs(c.Dot(b)) <= 1e-6*scale*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |a·b| <= |a||b| (Cauchy-Schwarz).
func TestDotCauchySchwarz(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3(clampMag(ax), clampMag(ay), clampMag(az))
		b := V3(clampMag(bx), clampMag(by), clampMag(bz))
		return math.Abs(a.Dot(b)) <= a.Len()*b.Len()*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampMag maps arbitrary quick-generated floats into a sane range so the
// properties are not destroyed by overflow to Inf.
func clampMag(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return Clamp(v, -1e6, 1e6)
}
