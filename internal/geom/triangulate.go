package geom

import "fmt"

// Triangulate decomposes a simple polygon (no self-intersections, no holes)
// into triangles using ear clipping. The polygon may wind either way; the
// returned index triples reference the input vertices and wind the same way
// as the input polygon. The algorithm is O(n^2), which is ample for the
// profile sizes produced by CAD tessellation.
func Triangulate(p Polygon) ([][3]int, error) {
	n := len(p)
	if n < 3 {
		return nil, fmt.Errorf("geom: cannot triangulate %d-gon", n)
	}
	ccw := p.IsCCW()
	// Work on a CCW copy, mapping indices back at the end.
	idx := make([]int, n)
	for i := range idx {
		if ccw {
			idx[i] = i
		} else {
			idx[i] = n - 1 - i
		}
	}
	verts := func(i int) Vec2 { return p[idx[i]] }

	var out [][3]int
	emit := func(a, b, c int) {
		if ccw {
			out = append(out, [3]int{a, b, c})
		} else {
			out = append(out, [3]int{c, b, a})
		}
	}

	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	isConvex := func(prev, cur, next int) bool {
		return verts(cur).Sub(verts(prev)).Cross(verts(next).Sub(verts(cur))) > 0
	}
	inTriangle := func(q, a, b, c Vec2) bool {
		d1 := b.Sub(a).Cross(q.Sub(a))
		d2 := c.Sub(b).Cross(q.Sub(b))
		d3 := a.Sub(c).Cross(q.Sub(c))
		hasNeg := d1 < 0 || d2 < 0 || d3 < 0
		hasPos := d1 > 0 || d2 > 0 || d3 > 0
		return !(hasNeg && hasPos)
	}

	guard := 0
	for len(remaining) > 3 {
		guard++
		if guard > 4*n*n {
			return nil, fmt.Errorf("geom: ear clipping failed to converge (self-intersecting polygon?)")
		}
		clipped := false
		m := len(remaining)
		for i := 0; i < m; i++ {
			prev := remaining[(i-1+m)%m]
			cur := remaining[i]
			next := remaining[(i+1)%m]
			if !isConvex(prev, cur, next) {
				continue
			}
			// No other remaining vertex may lie inside the candidate ear.
			ok := true
			for _, j := range remaining {
				if j == prev || j == cur || j == next {
					continue
				}
				if inTriangle(verts(j), verts(prev), verts(cur), verts(next)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			emit(idx[prev], idx[cur], idx[next])
			remaining = append(remaining[:i], remaining[i+1:]...)
			clipped = true
			break
		}
		if !clipped {
			// Degenerate input (collinear runs). Clip the least-reflex
			// vertex to make progress; this keeps the area correct for
			// the near-degenerate polygons tessellation can produce.
			best, bestCross := -1, -1.0
			m := len(remaining)
			for i := 0; i < m; i++ {
				prev := remaining[(i-1+m)%m]
				cur := remaining[i]
				next := remaining[(i+1)%m]
				cr := verts(cur).Sub(verts(prev)).Cross(verts(next).Sub(verts(cur)))
				if best == -1 || cr > bestCross {
					best, bestCross = i, cr
				}
			}
			i := best
			prev := remaining[(i-1+m)%m]
			cur := remaining[i]
			next := remaining[(i+1)%m]
			emit(idx[prev], idx[cur], idx[next])
			remaining = append(remaining[:i], remaining[i+1:]...)
		}
	}
	emit(idx[remaining[0]], idx[remaining[1]], idx[remaining[2]])
	return out, nil
}
