package geom

import "math"

// AABB is an axis-aligned bounding box in 3D.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns an inverted box ready for extension.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Extend grows the box to contain p.
func (b *AABB) Extend(p Vec3) {
	b.Min = b.Min.Min(p)
	b.Max = b.Max.Max(p)
}

// Union returns the smallest box containing both a and o.
func (b AABB) Union(o AABB) AABB {
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Size returns the box edge lengths.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Center returns the centroid of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Contains reports whether p lies inside the closed box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// IsEmpty reports whether the box contains no point.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Volume returns the box volume (zero for empty boxes).
func (b AABB) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X * s.Y * s.Z
}

// Segment2 is a 2D line segment from A to B.
type Segment2 struct {
	A, B Vec2
}

// Len returns the segment length.
func (s Segment2) Len() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment2) Midpoint() Vec2 { return s.A.Lerp(s.B, 0.5) }

// ClosestParam returns the parameter t in [0,1] of the point on s closest
// to p.
func (s Segment2) ClosestParam(p Vec2) float64 {
	d := s.B.Sub(s.A)
	ll := d.LenSq()
	if ll == 0 {
		return 0
	}
	return Clamp(p.Sub(s.A).Dot(d)/ll, 0, 1)
}

// ClosestPoint returns the point on s closest to p.
func (s Segment2) ClosestPoint(p Vec2) Vec2 {
	return s.A.Lerp(s.B, s.ClosestParam(p))
}

// Dist returns the distance from p to segment s.
func (s Segment2) Dist(p Vec2) float64 { return s.ClosestPoint(p).Dist(p) }

// ProperlyIntersects reports whether segments s and o cross transversally
// at a single interior point (strict crossing; touching endpoints and
// collinear overlap do not count).
func (s Segment2) ProperlyIntersects(o Segment2) bool {
	d1 := o.B.Sub(o.A).Cross(s.A.Sub(o.A))
	d2 := o.B.Sub(o.A).Cross(s.B.Sub(o.A))
	d3 := s.B.Sub(s.A).Cross(o.A.Sub(s.A))
	d4 := s.B.Sub(s.A).Cross(o.B.Sub(s.A))
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}

// Plane is an oriented plane {p : p·Normal = Offset}.
type Plane struct {
	Normal Vec3    // unit normal
	Offset float64 // signed distance of the plane from the origin
}

// PlaneZ returns a horizontal plane at height z with +Z normal.
func PlaneZ(z float64) Plane { return Plane{Normal: Vec3{0, 0, 1}, Offset: z} }

// SignedDist returns the signed distance of p from the plane.
func (pl Plane) SignedDist(p Vec3) float64 { return p.Dot(pl.Normal) - pl.Offset }

// Triangle is a 3D triangle with explicit vertex order (CCW seen from the
// outward normal side).
type Triangle struct {
	A, B, C Vec3
}

// Normal returns the unit normal of the triangle (right-hand rule).
func (t Triangle) Normal() Vec3 {
	return t.B.Sub(t.A).Cross(t.C.Sub(t.A)).Normalized()
}

// Area returns the triangle area.
func (t Triangle) Area() float64 {
	return t.B.Sub(t.A).Cross(t.C.Sub(t.A)).Len() / 2
}

// Centroid returns the triangle centroid.
func (t Triangle) Centroid() Vec3 {
	return t.A.Add(t.B).Add(t.C).Scale(1.0 / 3.0)
}

// Bounds returns the triangle's bounding box.
func (t Triangle) Bounds() AABB {
	b := EmptyAABB()
	b.Extend(t.A)
	b.Extend(t.B)
	b.Extend(t.C)
	return b
}

// SignedVolume returns the signed volume of the tetrahedron formed by the
// triangle and the origin; summing over a closed shell yields the enclosed
// volume (positive for outward-oriented shells).
func (t Triangle) SignedVolume() float64 {
	return t.A.Dot(t.B.Cross(t.C)) / 6
}

// IsDegenerate reports whether the triangle has (near-)zero area or
// repeated vertices within tol.
func (t Triangle) IsDegenerate(tol float64) bool {
	if t.A.Eq(t.B, tol) || t.B.Eq(t.C, tol) || t.A.Eq(t.C, tol) {
		return true
	}
	return t.Area() <= tol*tol
}

// IntersectPlaneZ intersects the triangle with the horizontal plane z=h and
// returns the intersection segment endpoints. ok is false when the triangle
// does not cross the plane transversally (entirely above, below, or
// coplanar).
func (t Triangle) IntersectPlaneZ(h float64) (p, q Vec3, ok bool) {
	da := t.A.Z - h
	db := t.B.Z - h
	dc := t.C.Z - h
	// Count strict sides.
	pos := 0
	neg := 0
	for _, d := range [3]float64{da, db, dc} {
		if d > 0 {
			pos++
		} else if d < 0 {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return Vec3{}, Vec3{}, false // no transversal crossing
	}
	// Each edge contributes at most one point, so a fixed buffer keeps
	// this allocation-free (it sits in the slicer's innermost loop).
	var pts [3]Vec3
	np := 0
	edge := func(u, v Vec3, du, dv float64) {
		if (du > 0 && dv < 0) || (du < 0 && dv > 0) {
			t := du / (du - dv)
			pts[np] = u.Lerp(v, t)
			np++
		} else if du == 0 {
			pts[np] = u
			np++
		}
	}
	edge(t.A, t.B, da, db)
	edge(t.B, t.C, db, dc)
	edge(t.C, t.A, dc, da)
	// Deduplicate in place (a vertex exactly on the plane is visited
	// twice).
	uniq := 0
	for i := 0; i < np; i++ {
		dup := false
		for j := 0; j < uniq; j++ {
			if pts[i].Eq(pts[j], 1e-12) {
				dup = true
				break
			}
		}
		if !dup {
			pts[uniq] = pts[i]
			uniq++
		}
	}
	if uniq < 2 {
		return Vec3{}, Vec3{}, false
	}
	return pts[0], pts[1], true
}
