package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdentityApply(t *testing.T) {
	p := V3(1, 2, 3)
	if got := Identity().Apply(p); !got.Eq(p, 1e-15) {
		t.Errorf("Identity.Apply = %v", got)
	}
}

func TestTranslate(t *testing.T) {
	m := Translate(V3(10, -5, 2))
	if got := m.Apply(V3(1, 1, 1)); !got.Eq(V3(11, -4, 3), 1e-15) {
		t.Errorf("Translate.Apply = %v", got)
	}
	// Directions are unaffected by translation.
	if got := m.ApplyDir(V3(1, 1, 1)); !got.Eq(V3(1, 1, 1), 1e-15) {
		t.Errorf("Translate.ApplyDir = %v", got)
	}
}

func TestRotateX90(t *testing.T) {
	// RotateX(pi/2) maps +Y to +Z: this is the x-y -> x-z reorientation
	// used for the print-orientation experiments (Fig. 6).
	m := RotateX(math.Pi / 2)
	if got := m.Apply(V3(0, 1, 0)); !got.Eq(V3(0, 0, 1), 1e-12) {
		t.Errorf("RotateX(90).Apply(+Y) = %v, want +Z", got)
	}
	if got := m.Apply(V3(0, 0, 1)); !got.Eq(V3(0, -1, 0), 1e-12) {
		t.Errorf("RotateX(90).Apply(+Z) = %v, want -Y", got)
	}
}

func TestRotateYZ(t *testing.T) {
	if got := RotateY(math.Pi / 2).Apply(V3(0, 0, 1)); !got.Eq(V3(1, 0, 0), 1e-12) {
		t.Errorf("RotateY(90).Apply(+Z) = %v, want +X", got)
	}
	if got := RotateZ(math.Pi / 2).Apply(V3(1, 0, 0)); !got.Eq(V3(0, 1, 0), 1e-12) {
		t.Errorf("RotateZ(90).Apply(+X) = %v, want +Y", got)
	}
}

func TestMulComposition(t *testing.T) {
	m := Translate(V3(1, 0, 0)).Mul(RotateZ(math.Pi / 2))
	// Rotation applied first, then translation.
	if got := m.Apply(V3(1, 0, 0)); !got.Eq(V3(1, 1, 0), 1e-12) {
		t.Errorf("composite = %v, want (1,1,0)", got)
	}
}

func TestIsRigid(t *testing.T) {
	if !RotateX(0.3).Mul(Translate(V3(1, 2, 3))).IsRigid(1e-9) {
		t.Error("rotation+translation should be rigid")
	}
	if ScaleUniform(2).IsRigid(1e-9) {
		t.Error("scaling should not be rigid")
	}
	if Scale(V3(1, 1, -1)).IsRigid(1e-9) {
		t.Error("mirror should not be rigid (det = -1)")
	}
}

func TestDet3(t *testing.T) {
	if got := ScaleUniform(2).Det3(); !ApproxEq(got, 8, 1e-12) {
		t.Errorf("Det3 = %v, want 8", got)
	}
	if got := RotateY(1.234).Det3(); !ApproxEq(got, 1, 1e-12) {
		t.Errorf("rotation Det3 = %v, want 1", got)
	}
}

// Property: rigid transforms preserve distances.
func TestRigidPreservesDistance(t *testing.T) {
	f := func(angle, tx, ty, tz, px, py, pz, qx, qy, qz float64) bool {
		angle = Clamp(clampMag(angle), -10, 10)
		m := Translate(V3(clampMag(tx), clampMag(ty), clampMag(tz))).
			Mul(RotateZ(angle)).Mul(RotateX(angle / 2))
		p := V3(clampMag(px), clampMag(py), clampMag(pz))
		q := V3(clampMag(qx), clampMag(qy), clampMag(qz))
		before := p.Dist(q)
		after := m.Apply(p).Dist(m.Apply(q))
		return math.Abs(before-after) <= 1e-6*(1+before)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ApplyNormal returns unit vectors for nonzero input.
func TestApplyNormalUnit(t *testing.T) {
	f := func(angle, nx, ny, nz float64) bool {
		n := V3(clampMag(nx), clampMag(ny), clampMag(nz))
		if n.Len() < 1e-9 {
			return true
		}
		m := RotateX(Clamp(clampMag(angle), -10, 10))
		return ApproxEq(m.ApplyNormal(n).Len(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
