package watermark

import (
	"math"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/stl"
	"obfuscade/internal/tessellate"
)

func barMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, tessellate.Fine)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEmbedDetectRoundTrip(t *testing.T) {
	key := []byte("owner-secret-key")
	original := barMesh(t)
	marked := original.Clone()
	n, err := Embed(marked, key, DefaultAmplitude)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no vertices marked")
	}
	res, err := Detect(original, marked, key, DefaultAmplitude)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Present() {
		t.Errorf("mark not detected: %+v", res)
	}
	if res.Score < 0.9 {
		t.Errorf("score = %v, want > 0.9", res.Score)
	}
}

func TestWrongKeyScoresLow(t *testing.T) {
	original := barMesh(t)
	marked := original.Clone()
	if _, err := Embed(marked, []byte("right-key"), DefaultAmplitude); err != nil {
		t.Fatal(err)
	}
	res, err := Detect(original, marked, []byte("wrong-key"), DefaultAmplitude)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score) > 0.3 {
		t.Errorf("wrong key score = %v, want ~0", res.Score)
	}
	if res.Present() {
		t.Error("wrong key should not detect the mark")
	}
}

func TestUnmarkedMeshScoresZero(t *testing.T) {
	original := barMesh(t)
	res, err := Detect(original, original.Clone(), []byte("key"), DefaultAmplitude)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score) > 0.05 {
		t.Errorf("unmarked score = %v, want ~0", res.Score)
	}
}

// The mark must survive a binary STL export/import (float32 rounding).
func TestMarkSurvivesSTLRoundTrip(t *testing.T) {
	key := []byte("roundtrip-key")
	original := barMesh(t)
	marked := original.Clone()
	if _, err := Embed(marked, key, DefaultAmplitude); err != nil {
		t.Fatal(err)
	}
	data, err := stl.Marshal(marked, stl.Binary, "marked")
	if err != nil {
		t.Fatal(err)
	}
	back, err := stl.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(original, back, key, DefaultAmplitude)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Present() || res.Score < 0.8 {
		t.Errorf("mark lost in STL round trip: %+v", res)
	}
}

// Imperceptibility: marking changes the volume negligibly and keeps the
// shells watertight.
func TestMarkImperceptible(t *testing.T) {
	original := barMesh(t)
	marked := original.Clone()
	if _, err := Embed(marked, []byte("k"), DefaultAmplitude); err != nil {
		t.Fatal(err)
	}
	v0, v1 := original.Volume(), marked.Volume()
	if math.Abs(v1-v0)/v0 > 1e-3 {
		t.Errorf("volume changed by %.2g%%", 100*math.Abs(v1-v0)/v0)
	}
	for i := range marked.Shells {
		rep := mesh.IndexShell(&marked.Shells[i], 1e-9).Analyze()
		if !rep.Watertight() {
			t.Errorf("marked shell %s not watertight: %+v", marked.Shells[i].Name, rep)
		}
	}
}

func TestEmbedErrors(t *testing.T) {
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("b", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1)),
	}}
	if _, err := Embed(m, nil, DefaultAmplitude); err == nil {
		t.Error("expected error for empty key")
	}
	if _, err := Embed(m, []byte("k"), 0); err == nil {
		t.Error("expected error for zero amplitude")
	}
	if _, err := Embed(m, []byte("k"), 1); err == nil {
		t.Error("expected error for amplitude near cell size")
	}
	if _, err := Detect(m, m, nil, DefaultAmplitude); err == nil {
		t.Error("expected error for empty key in detect")
	}
	if _, err := Detect(m, m, []byte("k"), 0); err == nil {
		t.Error("expected error for zero amplitude in detect")
	}
}

// Two different marked copies (different keys) are distinguishable:
// traitor tracing across leaked copies.
func TestTraitorTracing(t *testing.T) {
	original := barMesh(t)
	keyA := []byte("partner-A")
	keyB := []byte("partner-B")
	copyA := original.Clone()
	copyB := original.Clone()
	if _, err := Embed(copyA, keyA, DefaultAmplitude); err != nil {
		t.Fatal(err)
	}
	if _, err := Embed(copyB, keyB, DefaultAmplitude); err != nil {
		t.Fatal(err)
	}
	// The leaked file is copy B.
	leaked := copyB
	resA, _ := Detect(original, leaked, keyA, DefaultAmplitude)
	resB, _ := Detect(original, leaked, keyB, DefaultAmplitude)
	if resB.Score < 0.9 {
		t.Errorf("true partner score = %v", resB.Score)
	}
	if resA.Score > 0.3 {
		t.Errorf("innocent partner score = %v", resA.Score)
	}
}

// An attacker erasing the watermark by remeshing (vertex clustering at
// 20x the mark amplitude) succeeds in destroying the correlation — but
// only at the cost of deforming every surface by an order of magnitude
// more than the mark, which dimensional metrology flags. Erasure is
// detectable even when the mark itself is gone.
func TestWatermarkErasureCostsDimensions(t *testing.T) {
	key := []byte("k")
	original := barMesh(t)
	marked := original.Clone()
	if _, err := Embed(marked, key, DefaultAmplitude); err != nil {
		t.Fatal(err)
	}
	// Cluster-weld at 20 µm (20x the 1 µm amplitude).
	const cluster = 0.02
	erased := marked.Clone()
	for si := range erased.Shells {
		s := &erased.Shells[si]
		for i := range s.Tris {
			s.Tris[i].A = snapVec(s.Tris[i].A, cluster)
			s.Tris[i].B = snapVec(s.Tris[i].B, cluster)
			s.Tris[i].C = snapVec(s.Tris[i].C, cluster)
		}
	}
	res, err := Detect(original, erased, key, DefaultAmplitude)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score > 0.5 {
		t.Logf("mark survived clustering (score %v) — even better", res.Score)
	}
	// The erasure attempt moved surfaces by ~cluster/2 >> amplitude:
	// measurable by comparing volumes/bounds against the distributed
	// (marked) copy.
	dv := erased.Volume() - marked.Volume()
	if dv < 0 {
		dv = -dv
	}
	if dv/marked.Volume() < 1e-6 {
		t.Error("clustering should leave measurable volumetric damage")
	}
}

func snapVec(v geom.Vec3, c float64) geom.Vec3 {
	return geom.V3(
		math.Round(v.X/c)*c,
		math.Round(v.Y/c)*c,
		math.Round(v.Z/c)*c,
	)
}
