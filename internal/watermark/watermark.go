// Package watermark embeds keyed, imperceptible identification marks in
// mesh geometry — the "identification codes and marks to guard against
// duplication from stolen files" that Table 1 lists as a complementary
// control to ObfusCADe's functional features.
//
// The scheme perturbs each welded vertex along its normal by ±amplitude,
// the sign drawn from an HMAC-SHA256 keyed by the vertex's coarse
// position. At the default 1 µm amplitude the mark is far below printer
// resolution (and survives the float32 quantisation of STL export), yet a
// correlation detector holding the original mesh and the key recovers it
// reliably. Detection is non-blind: the IP owner keeps the unmarked
// original, as is standard for forensic mesh watermarking.
package watermark

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// DefaultAmplitude is the default perturbation amplitude in mm (1 µm).
const DefaultAmplitude = 1e-3

// cellSize is the coarse quantisation used to key vertex identities; it
// must be much larger than any amplitude so marked vertices key the same
// cell as their originals.
const cellSize = 0.05

// weldTol is the vertex welding tolerance.
const weldTol = 1e-6

func cellOf(v geom.Vec3) [3]int64 {
	return [3]int64{
		int64(math.Round(v.X / cellSize)),
		int64(math.Round(v.Y / cellSize)),
		int64(math.Round(v.Z / cellSize)),
	}
}

// signFor derives the keyed ±1 sign for a vertex cell.
func signFor(key []byte, cell [3]int64) float64 {
	mac := hmac.New(sha256.New, key)
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(cell[0]))
	binary.LittleEndian.PutUint64(buf[8:], uint64(cell[1]))
	binary.LittleEndian.PutUint64(buf[16:], uint64(cell[2]))
	mac.Write(buf[:])
	if mac.Sum(nil)[0]&1 == 1 {
		return 1
	}
	return -1
}

// vertexNormals returns area-weighted vertex normals of an indexed shell.
func vertexNormals(idx *mesh.Indexed) []geom.Vec3 {
	normals := make([]geom.Vec3, len(idx.Verts))
	for _, f := range idx.Faces {
		t := geom.Triangle{A: idx.Verts[f[0]], B: idx.Verts[f[1]], C: idx.Verts[f[2]]}
		n := t.B.Sub(t.A).Cross(t.C.Sub(t.A)) // area-weighted
		for _, vi := range f {
			normals[vi] = normals[vi].Add(n)
		}
	}
	for i := range normals {
		normals[i] = normals[i].Normalized()
	}
	return normals
}

// Embed marks every shell of the mesh in place and returns the number of
// vertices perturbed.
func Embed(m *mesh.Mesh, key []byte, amplitude float64) (int, error) {
	if len(key) == 0 {
		return 0, fmt.Errorf("watermark: empty key")
	}
	if amplitude <= 0 || amplitude >= cellSize/10 {
		return 0, fmt.Errorf("watermark: amplitude %g out of (0, %g)", amplitude, cellSize/10)
	}
	total := 0
	for si := range m.Shells {
		s := &m.Shells[si]
		idx := mesh.IndexShell(s, weldTol)
		normals := vertexNormals(idx)
		marked := make([]geom.Vec3, len(idx.Verts))
		for vi, v := range idx.Verts {
			sign := signFor(key, cellOf(v))
			marked[vi] = v.Add(normals[vi].Scale(sign * amplitude))
			total++
		}
		// Rebuild the shell from the welded, marked vertices so shared
		// vertices stay shared (no cracks).
		tris := make([]geom.Triangle, 0, len(idx.Faces))
		for _, f := range idx.Faces {
			tris = append(tris, geom.Triangle{
				A: marked[f[0]], B: marked[f[1]], C: marked[f[2]],
			})
		}
		s.Tris = tris
	}
	return total, nil
}

// DetectionResult reports the correlation evidence.
type DetectionResult struct {
	// Score is the normalised correlation: ~1 for a marked mesh with the
	// right key, ~0 for unmarked meshes or wrong keys.
	Score float64
	// Matched is the number of vertices paired between the meshes.
	Matched int
	// Total is the number of original vertices.
	Total int
}

// Present reports whether the score clears the detection threshold.
func (d DetectionResult) Present() bool { return d.Score > 0.5 && d.Matched >= 8 }

// Detect correlates the suspect mesh's vertex displacements (relative to
// the unmarked original) against the keyed sign sequence.
func Detect(original, suspect *mesh.Mesh, key []byte, amplitude float64) (DetectionResult, error) {
	if len(key) == 0 {
		return DetectionResult{}, fmt.Errorf("watermark: empty key")
	}
	if amplitude <= 0 {
		return DetectionResult{}, fmt.Errorf("watermark: amplitude must be positive")
	}
	// Index all suspect vertices by coarse cell for matching.
	suspectByCell := make(map[[3]int64][]geom.Vec3)
	for si := range suspect.Shells {
		idx := mesh.IndexShell(&suspect.Shells[si], weldTol)
		for _, v := range idx.Verts {
			c := cellOf(v)
			suspectByCell[c] = append(suspectByCell[c], v)
		}
	}
	find := func(v geom.Vec3) (geom.Vec3, bool) {
		c := cellOf(v)
		best := geom.Vec3{}
		bestD := math.Inf(1)
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for dz := int64(-1); dz <= 1; dz++ {
					for _, s := range suspectByCell[[3]int64{c[0] + dx, c[1] + dy, c[2] + dz}] {
						if d := s.Dist(v); d < bestD {
							bestD = d
							best = s
						}
					}
				}
			}
		}
		return best, bestD <= 5*amplitude
	}

	res := DetectionResult{}
	var corr float64
	for si := range original.Shells {
		idx := mesh.IndexShell(&original.Shells[si], weldTol)
		normals := vertexNormals(idx)
		for vi, v := range idx.Verts {
			res.Total++
			sv, ok := find(v)
			if !ok {
				continue
			}
			res.Matched++
			disp := sv.Sub(v).Dot(normals[vi])
			corr += signFor(key, cellOf(v)) * disp / amplitude
		}
	}
	if res.Matched > 0 {
		res.Score = corr / float64(res.Matched)
	}
	return res, nil
}
