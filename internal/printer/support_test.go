package printer

import (
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/gcode"
	"obfuscade/internal/geom"
	"obfuscade/internal/slicer"
	"obfuscade/internal/tessellate"
)

// buildSphereVariant prints the embedded-sphere prism keeping support.
func buildSphereVariant(t *testing.T) (*Build, *slicer.Result) {
	t.Helper()
	p, err := brep.NewRectPrism("prism", geom.V3(25.4, 12.7, 12.7))
	if err != nil {
		t.Fatal(err)
	}
	if err := brep.EmbedSphere(p, "prism", geom.V3(12.7, 6.35, 6.35), 3.175,
		brep.EmbedOpts{}); err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, tessellate.Fine)
	if err != nil {
		t.Fatal(err)
	}
	opts := slicer.DefaultOptions()
	res, err := slicer.Slice(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Print(res, DimensionElite(), Options{KeepSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	return b, res
}

func TestSupportToolpaths(t *testing.T) {
	b, _ := buildSphereVariant(t)
	paths := b.SupportToolpaths()
	if len(paths) == 0 {
		t.Fatal("sphere variant should need support toolpaths")
	}
	var total float64
	for _, lt := range paths {
		total += lt.ExtrudedLength()
		for _, mv := range lt.Moves {
			if mv.Role != slicer.Support && mv.Role != slicer.Travel {
				t.Fatalf("unexpected role %v in support paths", mv.Role)
			}
		}
	}
	// Extruded support length x road cross-section approximates the
	// support volume.
	vol := total * b.Grid.Cell * b.Grid.CellZ
	if vol < 0.5*b.SupportVolume || vol > 2*b.SupportVolume {
		t.Errorf("support path volume %.0f vs deposited %.0f", vol, b.SupportVolume)
	}
}

func TestSupportToolpathsWashed(t *testing.T) {
	p, err := brep.NewRectPrism("prism", geom.V3(10, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, tessellate.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	res, err := slicer.Slice(m, slicer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Print(res, DimensionElite(), Options{}) // washed
	if err != nil {
		t.Fatal(err)
	}
	if paths := b.SupportToolpaths(); len(paths) != 0 {
		t.Errorf("washed build support paths = %d, want 0", len(paths))
	}
}

func TestMergeToolpathsDualMaterialGCode(t *testing.T) {
	b, sliced := buildSphereVariant(t)
	model, err := sliced.Toolpaths()
	if err != nil {
		t.Fatal(err)
	}
	support := b.SupportToolpaths()
	merged := MergeToolpathsByLayer(model, support)
	if len(merged) < len(model) {
		t.Fatalf("merged layers = %d < model layers %d", len(merged), len(model))
	}
	// Z strictly increasing.
	for i := 1; i < len(merged); i++ {
		if merged[i].Z <= merged[i-1].Z {
			t.Fatal("merged layers not z-ordered")
		}
	}
	prog, err := gcode.Generate("dual", merged, gcode.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Both tools appear.
	sawT0, sawT1 := false, false
	for _, c := range prog.Commands {
		switch c.Code {
		case "T0":
			sawT0 = true
		case "T1":
			sawT1 = true
		}
	}
	if !sawT0 || !sawT1 {
		t.Errorf("dual-material program tools: T0=%t T1=%t", sawT0, sawT1)
	}
	rep, err := gcode.Simulate(prog, gcode.DimensionEliteEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("dual-material program violations: %v", rep.Violations)
	}
}

func TestExtrusionTrimAndWeightCheck(t *testing.T) {
	p, err := brep.NewRectPrism("prism", geom.V3(20, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, tessellate.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	res, err := slicer.Slice(m, slicer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Print(res, DimensionElite(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	trojaned, err := Print(res, DimensionElite(), Options{ExtrusionTrim: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if trojaned.ModelVolume >= clean.ModelVolume {
		t.Errorf("trim should reduce volume: %v vs %v", trojaned.ModelVolume, clean.ModelVolume)
	}
	design := 20.0 * 10 * 5
	if err := WeightCheck(clean, design, 0.1); err != nil {
		t.Errorf("clean build failed weight check: %v", err)
	}
	if err := WeightCheck(trojaned, design, 0.1); err == nil {
		t.Error("trojaned build passed weight check")
	}
	if _, err := Print(res, DimensionElite(), Options{ExtrusionTrim: 1.5}); err == nil {
		t.Error("expected error for trim > 1")
	}
}
