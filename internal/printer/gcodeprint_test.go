package printer

import (
	"math"
	"testing"

	"obfuscade/internal/gcode"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/slicer"
)

// dropExtrusions removes every n-th extruding move (the supplychain
// porosity attack, inlined to avoid an import cycle in tests).
func dropExtrusions(p *gcode.Program, n int) {
	kept := p.Commands[:0]
	count := 0
	for _, c := range p.Commands {
		if c.Code == "G1" {
			if _, hasE := c.Arg("E"); hasE {
				count++
				if count%n == 0 {
					continue
				}
			}
		}
		kept = append(kept, c)
	}
	p.Commands = kept
}

func boxProgram(t *testing.T) (*gcode.Program, *slicer.Result, float64) {
	t.Helper()
	const w, d, h = 20.0, 10.0, 1.0668 // 6 layers
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(w, d, h)),
	}}
	sliced, err := slicer.Slice(m, slicer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	paths, err := sliced.Toolpaths()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := gcode.Generate("box", paths, gcode.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return prog, sliced, w * d * h
}

func TestPrintGCodeMatchesDesignVolume(t *testing.T) {
	prog, sliced, design := boxProgram(t)
	prof := DimensionElite()

	fromGCode, err := PrintGCode(prog, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fromGCode.ModelVolume-design)/design > 0.15 {
		t.Errorf("gcode-printed volume %v, want ~%v", fromGCode.ModelVolume, design)
	}
	// Region-driven and program-driven deposition agree.
	fromSlices, err := Print(sliced, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(fromGCode.ModelVolume-fromSlices.ModelVolume) / fromSlices.ModelVolume
	if rel > 0.15 {
		t.Errorf("gcode volume %v vs slicer volume %v (%.0f%% apart)",
			fromGCode.ModelVolume, fromSlices.ModelVolume, rel*100)
	}
	if err := WeightCheck(fromGCode, design, 0.2); err != nil {
		t.Errorf("clean gcode print failed weight check: %v", err)
	}
}

// The full attack loop: porosity-injected G-code physically prints an
// underweight part; the weight inspection catches it even without a
// reference program.
func TestPorosityAttackManifestsPhysically(t *testing.T) {
	prog, _, design := boxProgram(t)
	prof := DimensionElite()
	dropExtrusions(prog, 3)
	b, err := PrintGCode(prog, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WeightCheck(b, design, 0.1); err == nil {
		t.Errorf("porosity-attacked print passed weight check (volume %v of %v)",
			b.ModelVolume, design)
	}
}

// Firmware trojan on the G-code path.
func TestPrintGCodeExtrusionTrim(t *testing.T) {
	prog, _, _ := boxProgram(t)
	prof := DimensionElite()
	clean, err := PrintGCode(prog, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trojaned, err := PrintGCode(prog, prof, Options{ExtrusionTrim: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if trojaned.ModelVolume >= 0.9*clean.ModelVolume {
		t.Errorf("trim should cut volume: %v vs %v", trojaned.ModelVolume, clean.ModelVolume)
	}
}

func TestPrintGCodeDualMaterial(t *testing.T) {
	// Hand-written two-layer program with support on T1.
	prog := &gcode.Program{Commands: []gcode.Command{
		{Code: "G92", Args: map[string]float64{"E": 0}},
		{Code: "T1"},
		{Code: "G1", Args: map[string]float64{"Z": 0.0889, "F": 4800}},
		{Code: "G0", Args: map[string]float64{"X": 0, "Y": 0}},
		{Code: "G1", Args: map[string]float64{"X": 10, "Y": 0, "E": 0.5}},
		{Code: "T0"},
		{Code: "G1", Args: map[string]float64{"Z": 0.2667}},
		{Code: "G0", Args: map[string]float64{"X": 0, "Y": 0}},
		{Code: "G1", Args: map[string]float64{"X": 10, "Y": 0, "E": 1.0}},
	}}
	b, err := PrintGCode(prog, DimensionElite(), Options{KeepSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.SupportVolume <= 0 || b.ModelVolume <= 0 {
		t.Errorf("dual deposit volumes: model %v support %v", b.ModelVolume, b.SupportVolume)
	}
}

func TestPrintGCodeErrors(t *testing.T) {
	prof := DimensionElite()
	if _, err := PrintGCode(&gcode.Program{}, prof, Options{}); err == nil {
		t.Error("expected error for empty program")
	}
	travelOnly := &gcode.Program{Commands: []gcode.Command{
		{Code: "G0", Args: map[string]float64{"X": 10}},
	}}
	if _, err := PrintGCode(travelOnly, prof, Options{}); err == nil {
		t.Error("expected error for program that extrudes nothing")
	}
	prog, _, _ := boxProgram(t)
	if _, err := PrintGCode(prog, prof, Options{ExtrusionTrim: 2}); err == nil {
		t.Error("expected error for invalid trim")
	}
}
