package printer

import (
	"math"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/slicer"
	"obfuscade/internal/tessellate"
	"obfuscade/internal/voxel"
)

func sliceMesh(t *testing.T, m *mesh.Mesh, layerHeight float64) *slicer.Result {
	t.Helper()
	opts := slicer.DefaultOptions()
	opts.LayerHeight = layerHeight
	res, err := slicer.Slice(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{DimensionElite(), Objet30Pro()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if DimensionElite().LayerHeight != 0.1778 {
		t.Error("FDM layer height should be 0.1778 mm (paper §3.1)")
	}
	if Objet30Pro().LayerHeight != 0.016 {
		t.Error("PolyJet layer height should be 16 µm (paper §3.1)")
	}
	bad := DimensionElite()
	bad.RoadWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero road width")
	}
	bad = DimensionElite()
	bad.HealFraction = 2
	if err := bad.Validate(); err == nil {
		t.Error("expected error for HealFraction > 1")
	}
}

func TestPrintBoxVolume(t *testing.T) {
	prof := DimensionElite()
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(20, 10, 3.556)),
	}}
	sliced := sliceMesh(t, m, prof.LayerHeight)
	b, err := Print(sliced, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 20 * 10 * 3.556
	if math.Abs(b.ModelVolume-want)/want > 0.08 {
		t.Errorf("model volume = %v, want ~%v", b.ModelVolume, want)
	}
	if b.SupportVolume > 0.05*want {
		t.Errorf("box should need almost no support, got %v", b.SupportVolume)
	}
	if b.LayerCount != len(sliced.Layers) {
		t.Errorf("layer count = %d", b.LayerCount)
	}
	if len(b.Seams) != 0 {
		t.Errorf("box should have no seams: %v", b.Seams)
	}
	// Washed grid has no support left.
	if b.Grid.Count(voxel.Support) != 0 {
		t.Error("support should be washed out by default")
	}
}

func TestPrintLayerHeightMismatch(t *testing.T) {
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(5, 5, 2)),
	}}
	sliced := sliceMesh(t, m, 0.25)
	if _, err := Print(sliced, DimensionElite(), Options{}); err == nil {
		t.Error("expected error for layer height mismatch")
	}
}

// The Table 3 / Fig. 10 reproduction at printer level: what material ends
// up inside the embedded sphere for each CAD variant.
func TestEmbeddedSpherePrinting(t *testing.T) {
	prof := DimensionElite()
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	const r = 3.175

	buildVariant := func(t *testing.T, opts brep.EmbedOpts, keepSupport bool) *Build {
		t.Helper()
		p, err := brep.NewRectPrism("prism", size)
		if err != nil {
			t.Fatal(err)
		}
		if err := brep.EmbedSphere(p, "prism", c, r, opts); err != nil {
			t.Fatal(err)
		}
		m, err := tessellate.Tessellate(p, tessellate.Fine)
		if err != nil {
			t.Fatal(err)
		}
		sliced := sliceMesh(t, m, prof.LayerHeight)
		b, err := Print(sliced, prof, Options{KeepSupport: keepSupport})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	probe := func(b *Build) voxel.Material {
		x, y, z := b.Grid.Locate(c)
		return b.Grid.At(x, y, z)
	}

	cases := []struct {
		name string
		opts brep.EmbedOpts
		want voxel.Material // material at sphere centre, support kept
	}{
		{"solid-no-removal", brep.EmbedOpts{}, voxel.Support},
		{"surface-no-removal", brep.EmbedOpts{SurfaceBody: true}, voxel.Support},
		{"solid-removal", brep.EmbedOpts{MaterialRemoval: true}, voxel.Model},
		{"surface-removal", brep.EmbedOpts{MaterialRemoval: true, SurfaceBody: true}, voxel.Support},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := buildVariant(t, tc.opts, true)
			if got := probe(b); got != tc.want {
				t.Errorf("material at sphere centre = %v, want %v", got, tc.want)
			}
		})
	}

	// Fig. 10c: washing out the support leaves a detectable internal
	// cavity; CT-style inspection finds it (authentication).
	washed := buildVariant(t, brep.EmbedOpts{}, false)
	cavities := washed.Grid.InternalCavities()
	if len(cavities) != 1 {
		t.Fatalf("cavities after wash = %d, want 1", len(cavities))
	}
	sphVol := 4.0 / 3 * math.Pi * r * r * r
	gotVol := float64(cavities[0].Voxels) * washed.Grid.VoxelVolume()
	if math.Abs(gotVol-sphVol)/sphVol > 0.30 {
		t.Errorf("cavity volume = %v, want ~%v", gotVol, sphVol)
	}
	// Fig. 10d: solid-removal prints fully dense — no internal cavity.
	dense := buildVariant(t, brep.EmbedOpts{MaterialRemoval: true}, false)
	if n := len(dense.Grid.InternalCavities()); n != 0 {
		t.Errorf("solid-removal print has %d cavities, want 0", n)
	}
}

func buildSplitBar(t *testing.T, res tessellate.Resolution, xz bool) *Build {
	t.Helper()
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := brep.SplitBySpline(p, "bar", s); err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, res)
	if err != nil {
		t.Fatal(err)
	}
	if xz {
		m.Transform(geom.RotateX(math.Pi / 2))
		b := m.Bounds()
		m.Transform(geom.Translate(geom.V3(0, -b.Min.Y, -b.Min.Z)))
	}
	prof := DimensionElite()
	sliced := sliceMesh(t, m, prof.LayerHeight)
	b, err := Print(sliced, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSplitBarSeamQuality(t *testing.T) {
	// Coarse x-y: visible surface disruption, weak-ish but healed seam.
	coarseXY := buildSplitBar(t, tessellate.Coarse, false)
	seamXY := coarseXY.SeamBetween("bar-upper", "bar-lower")
	if seamXY == nil {
		t.Fatal("x-y seam missing")
	}
	if !coarseXY.SurfaceDisrupted() {
		t.Errorf("coarse x-y should show surface disruption (width %g)", coarseXY.SurfaceDisruption)
	}
	if seamXY.DiscontinuousFraction != 0 {
		t.Errorf("x-y seam discontinuous fraction = %g", seamXY.DiscontinuousFraction)
	}

	// Custom x-y: clean surface, stronger seam.
	customXY := buildSplitBar(t, tessellate.Custom, false)
	if customXY.SurfaceDisrupted() {
		t.Errorf("custom x-y should look intact (width %g)", customXY.SurfaceDisruption)
	}
	seamCustom := customXY.SeamBetween("bar-upper", "bar-lower")
	if seamCustom.BondQuality <= seamXY.BondQuality {
		t.Errorf("custom x-y bond (%g) should beat coarse x-y (%g)",
			seamCustom.BondQuality, seamXY.BondQuality)
	}

	// x-z: discontinuous layers at every resolution -> much weaker seam.
	for _, res := range tessellate.Presets() {
		xz := buildSplitBar(t, res, true)
		seamXZ := xz.SeamBetween("bar-upper", "bar-lower")
		if seamXZ == nil {
			t.Fatalf("%s: x-z seam missing", res.Name)
		}
		if seamXZ.DiscontinuousFraction < 0.15 {
			t.Errorf("%s: x-z discontinuous fraction = %g, want >= 0.15",
				res.Name, seamXZ.DiscontinuousFraction)
		}
		if seamXZ.BondQuality >= seamCustom.BondQuality {
			t.Errorf("%s: x-z bond (%g) should be weaker than custom x-y (%g)",
				res.Name, seamXZ.BondQuality, seamCustom.BondQuality)
		}
	}
}

func TestIntactBarNoSeams(t *testing.T) {
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, tessellate.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	prof := DimensionElite()
	sliced := sliceMesh(t, m, prof.LayerHeight)
	b, err := Print(sliced, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Seams) != 0 {
		t.Errorf("intact bar seams = %v", b.Seams)
	}
	if b.SurfaceDisrupted() {
		t.Error("intact bar should not be disrupted")
	}
}

func TestBondQualityMonotonicity(t *testing.T) {
	prof := DimensionElite()
	narrow := slicer.InterfaceStats{MaxWidth: 0.01, Layers: 10}
	wide := slicer.InterfaceStats{MaxWidth: 0.2, Layers: 10}
	if bondQuality(prof, narrow, 0) <= bondQuality(prof, wide, 0) {
		t.Error("narrower voids should bond better")
	}
	if bondQuality(prof, narrow, 0) <= bondQuality(prof, narrow, 0.5) {
		t.Error("discontinuous layers should weaken the seam")
	}
	if q := bondQuality(prof, slicer.InterfaceStats{MaxWidth: 10}, 1); q < 0 || q > 1 {
		t.Errorf("bond quality out of range: %g", q)
	}
	// A coincident (zero-width) interface bonds perfectly.
	if q := bondQuality(prof, slicer.InterfaceStats{MaxWidth: 0}, 0); q != 1 {
		t.Errorf("coincident interface bond = %g, want 1", q)
	}
}
