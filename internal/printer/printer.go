// Package printer is a virtual additive-manufacturing machine. It deposits
// sliced layers into a voxel grid, generates dissolvable support material,
// applies road-level healing physics, records seam (body-interface) bond
// quality, and washes out support — producing the printed artifact that the
// testing stage (package mech, package voxel inspections) consumes.
//
// Two machine profiles mirror the paper's hardware: a Stratasys Dimension
// Elite FDM printer (ABS model material, SR-10 soluble support, 178 µm
// layers) and a Stratasys Objet30 Pro material-jetting printer (VeroClear,
// 16 µm minimum layers).
package printer

import (
	"context"
	"fmt"
	"math"
	"sort"

	"obfuscade/internal/geom"
	"obfuscade/internal/obs"
	"obfuscade/internal/slicer"
	"obfuscade/internal/trace"
	"obfuscade/internal/voxel"
)

// Virtual-print metrics: per-build latency plus deterministic layer and
// seam totals for both deposition paths (slicer-region and G-code).
var (
	stPrint      = obs.Stage("printer.print")
	stGCodePrint = obs.Stage("printer.gcodeprint")
	// stVoxel isolates the voxel work of a build — deposition, healing,
	// support generation, washout — so paperbench can report the stage
	// split between slicing-side and voxel-side time.
	stVoxel    = obs.Stage("printer.voxel")
	mDeposited = obs.Default().Counter("printer.layers.deposited")
	mSeams     = obs.Default().Counter("printer.seams")
)

// Profile describes a printer model and its deposition physics.
type Profile struct {
	// Name identifies the machine.
	Name string
	// Technology is "FDM" or "PolyJet".
	Technology string
	// LayerHeight is the build layer thickness in mm.
	LayerHeight float64
	// RoadWidth is the deposited road width in mm.
	RoadWidth float64
	// ModelMaterial and SupportMaterial name the feedstocks.
	ModelMaterial, SupportMaterial string
	// HealFraction is the fraction of the road width that adjacent roads
	// can bridge: void bands narrower than HealFraction*RoadWidth bond
	// partially instead of remaining open.
	HealFraction float64
	// InLayerWeldQuality is the bond quality (0..1) of a zero-width
	// in-layer seam between separately deposited regions.
	InLayerWeldQuality float64
	// ColdSeamQuality is the bond quality across a fully separated
	// (discontinuous-layer) seam.
	ColdSeamQuality float64
}

// DimensionElite returns the paper's FDM machine profile (Stratasys
// Dimension Elite: ABS model material, SR-10 soluble support, 178 µm
// layers).
func DimensionElite() Profile {
	return Profile{
		Name:               "Stratasys Dimension Elite",
		Technology:         "FDM",
		LayerHeight:        0.1778,
		RoadWidth:          0.5,
		ModelMaterial:      "ABS",
		SupportMaterial:    "SR-10",
		HealFraction:       0.14,
		InLayerWeldQuality: 1.0,
		ColdSeamQuality:    0.30,
	}
}

// Objet30Pro returns the paper's material-jetting machine profile
// (Stratasys Objet30 Pro: VeroClear photopolymer, 16 µm layers).
func Objet30Pro() Profile {
	return Profile{
		Name:            "Stratasys Objet30 Pro",
		Technology:      "PolyJet",
		LayerHeight:     0.016,
		RoadWidth:       0.1,
		ModelMaterial:   "VeroClear",
		SupportMaterial: "SUP705",
		// Jetted droplets planarise each layer, so voids up to roughly a
		// droplet diameter (~70 µm) fill in regardless of the thin road
		// width.
		HealFraction:       0.7,
		InLayerWeldQuality: 1.0,
		ColdSeamQuality:    0.30,
	}
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.LayerHeight <= 0 || p.RoadWidth <= 0 {
		return fmt.Errorf("printer: profile %q needs positive layer height and road width", p.Name)
	}
	if p.HealFraction < 0 || p.HealFraction > 1 {
		return fmt.Errorf("printer: profile %q HealFraction out of [0,1]", p.Name)
	}
	return nil
}

// Options configures the virtual build.
type Options struct {
	// Cell is the in-plane voxel size in mm; zero means RoadWidth/2.
	Cell float64
	// MaxVoxels caps the grid size; the vertical voxel size is coarsened
	// (multiple layers per voxel slab) to stay below it. Zero means
	// 40 million.
	MaxVoxels int
	// KeepSupport retains support material in the returned grid instead
	// of washing it out.
	KeepSupport bool
	// ExtrusionTrim models a compromised firmware silently
	// under-extruding: the fraction of commanded material actually
	// deposited (1 or 0 means uncompromised). The defender's
	// weight/density inspection (Table 1, "3D Printer" row) catches the
	// deficit.
	ExtrusionTrim float64
}

// SeamRecord summarises the printed bond across one body-pair interface —
// the physical manifestation of a spline split feature.
type SeamRecord struct {
	// BodyA, BodyB name the two bodies.
	BodyA, BodyB string
	// Stats aggregates the interface void geometry from the slicer.
	Stats slicer.InterfaceStats
	// DiscontinuousFraction is the fraction of shared layers in which the
	// bodies were fully separated islands (separate perimeter walls).
	DiscontinuousFraction float64
	// BondQuality is the effective relative bond strength (0..1) across
	// the seam after deposition healing.
	BondQuality float64
}

// Build is the result of a virtual print.
type Build struct {
	// Profile is the machine used.
	Profile Profile
	// Grid is the printed artifact (support washed out unless
	// Options.KeepSupport was set).
	Grid *voxel.Grid
	// LayerCount is the number of build layers deposited.
	LayerCount int
	// ModelVolume and SupportVolume are deposited volumes in mm^3.
	ModelVolume, SupportVolume float64
	// Seams records per-body-pair bond quality.
	Seams []SeamRecord
	// SurfaceDisruption is the widest void band reaching the artifact
	// surface, mm — the paper's Fig. 8 "surface disruption" when it
	// exceeds VisibleDefectWidth.
	SurfaceDisruption float64
}

// VisibleDefectWidth is the smallest void band width (mm) that shows as a
// visible surface defect on an FDM print — under-extrusion bands narrower
// than this are hidden by road spreading and layer texture.
const VisibleDefectWidth = 0.03

// SurfaceDisrupted reports whether the build shows visible surface
// disruption (paper Fig. 8a).
func (b *Build) SurfaceDisrupted() bool {
	return b.SurfaceDisruption > VisibleDefectWidth
}

// SeamBetween returns the seam record for a body pair, or nil.
func (b *Build) SeamBetween(a, c string) *SeamRecord {
	for i := range b.Seams {
		s := &b.Seams[i]
		if (s.BodyA == a && s.BodyB == c) || (s.BodyA == c && s.BodyB == a) {
			return s
		}
	}
	return nil
}

// Print deposits a sliced model. The slicing layer height should match the
// profile's; a mismatch is an error (the process chain would re-slice).
func Print(sliced *slicer.Result, prof Profile, opts Options) (*Build, error) {
	return PrintCtx(context.Background(), sliced, prof, opts)
}

// PrintCtx is Print with trace propagation: the stage span parents to
// the span carried by ctx and a batch instant records the deterministic
// deposited-layer count.
func PrintCtx(ctx context.Context, sliced *slicer.Result, prof Profile, opts Options) (build *Build, err error) {
	span := stPrint.Start()
	ctx, tsp := trace.StartSpan(ctx, "stage", "printer.print")
	defer func() {
		tsp.End()
		span.EndErr(err)
		if err == nil {
			mDeposited.Add(int64(build.LayerCount))
			mSeams.Add(int64(len(build.Seams)))
			trace.Instant(ctx, "batch", "printer.layers",
				trace.A("count", fmt.Sprint(build.LayerCount)))
		}
	}()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if math.Abs(sliced.Opts.LayerHeight-prof.LayerHeight) > 1e-9 {
		return nil, fmt.Errorf("printer: sliced at %g mm but %s builds %g mm layers",
			sliced.Opts.LayerHeight, prof.Name, prof.LayerHeight)
	}
	if len(sliced.Layers) == 0 {
		return nil, fmt.Errorf("printer: no layers to print")
	}
	cell := opts.Cell
	if cell <= 0 {
		cell = prof.RoadWidth / 2
	}
	maxVox := opts.MaxVoxels
	if maxVox <= 0 {
		maxVox = 40_000_000
	}

	// Choose a z aggregation factor so the grid fits the budget.
	size := sliced.Bounds.Size()
	nx := int(size.X/cell) + 3
	ny := int(size.Y/cell) + 3
	layersPerSlab := 1
	for {
		nz := (len(sliced.Layers)+layersPerSlab-1)/layersPerSlab + 1
		if nx*ny*nz <= maxVox {
			break
		}
		layersPerSlab++
		if layersPerSlab > len(sliced.Layers) {
			return nil, fmt.Errorf("printer: build of %dx%d cells cannot fit %d voxel budget",
				nx, ny, maxVox)
		}
	}
	padded := sliced.Bounds
	padded.Min.X -= cell
	padded.Min.Y -= cell
	padded.Max.X += cell
	padded.Max.Y += cell
	grid, err := voxel.NewGrid(padded, cell, prof.LayerHeight*float64(layersPerSlab))
	if err != nil {
		return nil, err
	}

	b := &Build{Profile: prof, Grid: grid, LayerCount: len(sliced.Layers)}

	vspan := stVoxel.Start()
	// Deposit model material layer by layer. One raster's cell arrays are
	// recycled across the whole loop: every layer shares the same bounds
	// and cell size, so after the first layer RasterizeInto never
	// allocates the big Class/Owner stores again.
	rmin := grid.Origin.XY()
	rmax := geom.V2(
		grid.Origin.X+float64(grid.NX)*cell,
		grid.Origin.Y+float64(grid.NY)*cell,
	)
	var r *slicer.Raster
	for li := range sliced.Layers {
		layer := &sliced.Layers[li]
		r, err = layer.RasterizeInto(rmin, rmax, cell, nil, r)
		if err != nil {
			vspan.End()
			return nil, fmt.Errorf("printer: layer %d: %w", li, err)
		}
		zi := li / layersPerSlab
		for iy := 0; iy < r.NY && iy < grid.NY; iy++ {
			for ix := 0; ix < r.NX && ix < grid.NX; ix++ {
				if r.At(ix, iy) == slicer.Model {
					grid.Set(ix, iy, zi, voxel.Model)
				}
			}
		}
	}

	if opts.ExtrusionTrim > 0 && opts.ExtrusionTrim < 1 {
		applyExtrusionTrim(grid, opts.ExtrusionTrim)
	} else if opts.ExtrusionTrim < 0 || opts.ExtrusionTrim > 1 {
		vspan.End()
		return nil, fmt.Errorf("printer: ExtrusionTrim %g out of [0,1]", opts.ExtrusionTrim)
	}

	healVoids(grid, prof, cell)
	generateSupport(grid)

	b.ModelVolume = grid.Volume(voxel.Model)
	b.SupportVolume = grid.Volume(voxel.Support)
	if !opts.KeepSupport {
		grid.Replace(voxel.Support, voxel.Empty)
	}
	vspan.End()

	// Seam physics from the slicer's exact interface geometry.
	for i, a := range sliced.BodyNames {
		for _, c := range sliced.BodyNames[i+1:] {
			st := sliced.InterfaceStatsBetween(a, c)
			if st.Layers == 0 {
				continue
			}
			disc := sliced.DiscontinuousLayerFraction(a, c)
			b.Seams = append(b.Seams, SeamRecord{
				BodyA: a, BodyB: c,
				Stats:                 st,
				DiscontinuousFraction: disc,
				BondQuality:           bondQuality(prof, st, disc),
			})
			if st.MaxWidth > b.SurfaceDisruption {
				b.SurfaceDisruption = st.MaxWidth
			}
		}
	}
	return b, nil
}

// SupportToolpaths derives per-layer support-material toolpaths from the
// build's support voxels — the white support tool paths of the paper's
// Fig. 10b. The build must have been printed with Options.KeepSupport;
// after wash-out there is nothing left to path.
func (b *Build) SupportToolpaths() []*slicer.LayerToolpath {
	g := b.Grid
	var out []*slicer.LayerToolpath
	for z := 0; z < g.NZ; z++ {
		lt := &slicer.LayerToolpath{
			Index: z,
			Z:     g.Origin.Z + (float64(z)+0.5)*g.CellZ,
		}
		for y := 0; y < g.NY; y++ {
			runStart := -1
			for x := 0; x <= g.NX; x++ {
				isSupport := x < g.NX && g.At(x, y, z) == voxel.Support
				if isSupport && runStart < 0 {
					runStart = x
				}
				if !isSupport && runStart >= 0 {
					a := g.Center(runStart, y, z)
					c := g.Center(x-1, y, z)
					from := geom.V2(a.X, a.Y)
					to := geom.V2(c.X, c.Y)
					lt.Moves = append(lt.Moves,
						slicer.Move{From: from, To: from, Role: slicer.Travel},
						slicer.Move{From: from, To: to, Role: slicer.Support})
					runStart = -1
				}
			}
		}
		if len(lt.Moves) > 0 {
			out = append(out, lt)
		}
	}
	return out
}

// MergeToolpathsByLayer interleaves model and support toolpaths layer by
// layer (support first, as FDM machines deposit the support raster before
// the model roads it carries), producing the move list a dual-extruder
// G-code program executes.
func MergeToolpathsByLayer(model, support []*slicer.LayerToolpath) []*slicer.LayerToolpath {
	byZ := make(map[int64]*slicer.LayerToolpath)
	key := func(z float64) int64 { return int64(math.Round(z * 1e4)) }
	var order []int64
	add := func(lt *slicer.LayerToolpath, first bool) {
		k := key(lt.Z)
		existing, ok := byZ[k]
		if !ok {
			cp := &slicer.LayerToolpath{Index: len(order), Z: lt.Z}
			cp.Moves = append(cp.Moves, lt.Moves...)
			byZ[k] = cp
			order = append(order, k)
			return
		}
		if first {
			existing.Moves = append(append([]slicer.Move{}, lt.Moves...), existing.Moves...)
		} else {
			existing.Moves = append(existing.Moves, lt.Moves...)
		}
	}
	for _, lt := range model {
		add(lt, false)
	}
	for _, lt := range support {
		add(lt, true)
	}
	// Order by z.
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]*slicer.LayerToolpath, 0, len(order))
	for i, k := range order {
		lt := byZ[k]
		lt.Index = i
		out = append(out, lt)
	}
	return out
}

// bondQuality converts interface geometry into an effective relative bond
// strength in [0, 1]:
//
//   - In layers where the bodies' contours cross (merged regions), the
//     seam is an in-layer weld degraded by the widest void band the roads
//     must bridge: q = InLayerWeldQuality * max(0, 1 - maxWidth/healWidth).
//     The maximum width governs because fracture initiates at the worst
//     spot of the seam, not its average.
//   - In discontinuous layers the two perimeter walls never fuse:
//     q = ColdSeamQuality.
//
// The overall seam quality is the layer-fraction-weighted mix. This is the
// model documented in DESIGN.md §4, calibrated so that the paper's Table 2
// split rows are predicted from its intact rows.
func bondQuality(prof Profile, st slicer.InterfaceStats, discFraction float64) float64 {
	healWidth := prof.HealFraction * prof.RoadWidth
	heal := 0.0
	if healWidth > 0 {
		heal = 1 - st.MaxWidth/healWidth
	}
	if heal < 0 {
		heal = 0
	}
	merged := prof.InLayerWeldQuality * heal
	q := (1-discFraction)*merged + discFraction*prof.ColdSeamQuality
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return q
}

// applyExtrusionTrim removes a deterministic fraction of the deposited
// model voxels, emulating a firmware Trojan thinning roads below spec.
func applyExtrusionTrim(g *voxel.Grid, trim float64) {
	period := int(math.Round(1 / (1 - trim)))
	if period < 2 {
		period = 2
	}
	n := 0
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				if g.At(x, y, z) != voxel.Model {
					continue
				}
				n++
				if n%period == 0 {
					g.Set(x, y, z, voxel.Empty)
				}
			}
		}
	}
}

// WeightCheck is the Table 1 "measurement of weight/density" mitigation:
// it compares the printed model volume against the design volume and
// reports whether the part is underweight beyond the tolerance fraction.
func WeightCheck(b *Build, designVolume, tol float64) error {
	if designVolume <= 0 {
		return fmt.Errorf("printer: design volume must be positive")
	}
	ratio := b.ModelVolume / designVolume
	if ratio < 1-tol {
		return fmt.Errorf("printer: part underweight: %.1f%% of design volume (tolerance %.0f%%)",
			100*ratio, 100*tol)
	}
	return nil
}

// healVoids applies road spreading: enclosed void cells in runs narrower
// than the healable width, flanked by model material, fuse into model
// material. Wider voids (e.g. the embedded sphere) remain open.
func healVoids(g *voxel.Grid, prof Profile, cell float64) {
	healCells := int(prof.HealFraction * prof.RoadWidth / cell)
	if healCells <= 0 {
		return
	}
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			run := 0
			for x := 0; x <= g.NX; x++ {
				isVoid := x < g.NX && g.At(x, y, z) == voxel.Empty
				if isVoid {
					run++
					continue
				}
				if run > 0 && run <= healCells &&
					x-run-1 >= 0 && g.At(x-run-1, y, z) == voxel.Model &&
					x < g.NX && g.At(x, y, z) == voxel.Model {
					for k := x - run; k < x; k++ {
						g.Set(k, y, z, voxel.Model)
					}
				}
				run = 0
			}
		}
	}
}

// generateSupport fills every empty voxel that has model material above it
// in the same column with support material — the "smart support fill" that
// packs enclosed cavities (the embedded sphere of Fig. 10c) and supports
// overhangs.
func generateSupport(g *voxel.Grid) {
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			seenModel := false
			for z := g.NZ - 1; z >= 0; z-- {
				switch g.At(x, y, z) {
				case voxel.Model:
					seenModel = true
				case voxel.Empty:
					if seenModel {
						g.Set(x, y, z, voxel.Support)
					}
				}
			}
		}
	}
}
