package printer

import (
	"fmt"
	"math"
	"strings"

	"obfuscade/internal/gcode"
	"obfuscade/internal/geom"
	"obfuscade/internal/voxel"
)

// PrintGCode executes a G-code program on the virtual machine, depositing
// each extruding move as a physical road into a voxel grid. Unlike Print
// (which deposits slicer regions), this path is driven purely by the
// program bytes — so G-code tampering (porosity injection, firmware
// under-extrusion) manifests in the printed artifact exactly as it would
// on the real machine.
//
// Tool selection follows the generator's convention: T0 deposits model
// material, T1 deposits support material. The grid covers the program's
// extruded extent; opts.Cell defaults to half the road width.
func PrintGCode(prog *gcode.Program, prof Profile, opts Options) (build *Build, err error) {
	span := stGCodePrint.Start()
	defer func() {
		span.EndErr(err)
		if err == nil {
			mDeposited.Add(int64(build.LayerCount))
		}
	}()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if prog == nil || len(prog.Commands) == 0 {
		return nil, fmt.Errorf("printer: empty program")
	}
	cell := opts.Cell
	if cell <= 0 {
		cell = prof.RoadWidth / 2
	}
	if opts.ExtrusionTrim < 0 || opts.ExtrusionTrim > 1 {
		return nil, fmt.Errorf("printer: ExtrusionTrim %g out of [0,1]", opts.ExtrusionTrim)
	}

	// First pass: bounds of extruding motion.
	bounds, nLayers, err := gcodeExtent(prog, prof)
	if err != nil {
		return nil, err
	}
	maxVox := opts.MaxVoxels
	if maxVox <= 0 {
		maxVox = 40_000_000
	}
	nx := int(bounds.Size().X/cell) + 3
	ny := int(bounds.Size().Y/cell) + 3
	layersPerSlab := 1
	for nx*ny*((nLayers+layersPerSlab-1)/layersPerSlab+1) > maxVox {
		layersPerSlab++
		if layersPerSlab > nLayers {
			return nil, fmt.Errorf("printer: program exceeds voxel budget")
		}
	}
	padded := bounds
	padded.Min.X -= cell
	padded.Min.Y -= cell
	// The grid must hold every layer slab regardless of how the extruded
	// z extent quantises.
	padded.Max.Z = padded.Min.Z + float64(nLayers)*prof.LayerHeight
	grid, err := voxel.NewGrid(padded, cell, prof.LayerHeight*float64(layersPerSlab))
	if err != nil {
		return nil, err
	}
	b := &Build{Profile: prof, Grid: grid, LayerCount: nLayers}

	// Second pass: deposit roads.
	pos := geom.V2(0, 0)
	z := 0.0
	e := 0.0
	tool := 0
	layerIndex := -1
	firstLayerZ := bounds.Min.Z
	for _, c := range prog.Commands {
		switch c.Code {
		case "T0":
			tool = 0
		case "T1":
			tool = 1
		case "G92":
			if v, ok := c.Arg("E"); ok {
				e = v
			}
		case "G0", "G1":
			next := pos
			if v, ok := c.Arg("X"); ok {
				next.X = v
			}
			if v, ok := c.Arg("Y"); ok {
				next.Y = v
			}
			if v, ok := c.Arg("Z"); ok && v != z {
				z = v
				layerIndex = int(math.Round((z - firstLayerZ) / prof.LayerHeight))
			}
			newE, hasE := c.Arg("E")
			if hasE && newE > e && layerIndex >= 0 {
				mat := voxel.Model
				if tool == 1 || strings.HasPrefix(c.Comment, "TYPE:support") {
					mat = voxel.Support
				}
				depositRoad(grid, pos, next, layerIndex/layersPerSlab, prof.RoadWidth/2, mat)
				e = newE
			}
			pos = next
		}
	}

	if opts.ExtrusionTrim > 0 && opts.ExtrusionTrim < 1 {
		applyExtrusionTrim(grid, opts.ExtrusionTrim)
	}
	b.ModelVolume = grid.Volume(voxel.Model)
	b.SupportVolume = grid.Volume(voxel.Support)
	if !opts.KeepSupport {
		grid.Replace(voxel.Support, voxel.Empty)
	}
	return b, nil
}

// gcodeExtent simulates the program to find the extruded bounding box and
// layer count.
func gcodeExtent(prog *gcode.Program, prof Profile) (geom.AABB, int, error) {
	bounds := geom.EmptyAABB()
	pos := geom.V2(0, 0)
	z := 0.0
	e := 0.0
	zs := map[int64]bool{}
	for _, c := range prog.Commands {
		switch c.Code {
		case "G92":
			if v, ok := c.Arg("E"); ok {
				e = v
			}
		case "G0", "G1":
			next := pos
			if v, ok := c.Arg("X"); ok {
				next.X = v
			}
			if v, ok := c.Arg("Y"); ok {
				next.Y = v
			}
			if v, ok := c.Arg("Z"); ok {
				z = v
			}
			if newE, ok := c.Arg("E"); ok && newE > e {
				bounds.Extend(geom.V3(pos.X, pos.Y, z))
				bounds.Extend(geom.V3(next.X, next.Y, z))
				zs[int64(math.Round(z*1e6))] = true
				e = newE
			}
			pos = next
		}
	}
	if bounds.IsEmpty() || len(zs) == 0 {
		return bounds, 0, fmt.Errorf("printer: program extrudes nothing")
	}
	// Layer count from the extruded z extent, indexed consistently with
	// the deposit pass (relative to the first extruding height).
	nLayers := int(math.Round((bounds.Max.Z-bounds.Min.Z)/prof.LayerHeight)) + 1
	return bounds, nLayers, nil
}

// depositRoad stamps the cells within halfWidth of the segment at the
// given slab index.
func depositRoad(g *voxel.Grid, a, b geom.Vec2, zi int, halfWidth float64, mat voxel.Material) {
	if zi < 0 || zi >= g.NZ {
		return
	}
	minX := math.Min(a.X, b.X) - halfWidth
	maxX := math.Max(a.X, b.X) + halfWidth
	minY := math.Min(a.Y, b.Y) - halfWidth
	maxY := math.Max(a.Y, b.Y) + halfWidth
	ix0 := int((minX - g.Origin.X) / g.Cell)
	ix1 := int((maxX-g.Origin.X)/g.Cell) + 1
	iy0 := int((minY - g.Origin.Y) / g.Cell)
	iy1 := int((maxY-g.Origin.Y)/g.Cell) + 1
	seg := geom.Segment2{A: a, B: b}
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			if !g.In(ix, iy, zi) {
				continue
			}
			c3 := g.Center(ix, iy, zi)
			if seg.Dist(geom.V2(c3.X, c3.Y)) <= halfWidth {
				// Model material never gets overwritten by support.
				if mat == voxel.Support && g.At(ix, iy, zi) == voxel.Model {
					continue
				}
				g.Set(ix, iy, zi, mat)
			}
		}
	}
}
