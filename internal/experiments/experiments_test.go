package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	tbl, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Render(), "design obfuscation") {
		t.Error("Table 1 missing the ObfusCADe row")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	tbl, groups, err := Table2(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, h := range []string{"Spline x-y", "Spline x-z", "Intact x-y", "Intact x-z",
		"Young's modulus", "Toughness"} {
		if !strings.Contains(out, h) {
			t.Errorf("Table 2 missing %q", h)
		}
	}
	if err := Table2ShapeCheck(groups); err != nil {
		t.Errorf("Table 2 shape check: %v\n%s", err, out)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	tbl, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	want := []string{"Support material", "Support material", "Model material", "Support material"}
	for i, w := range want {
		if tbl.Rows[i][2] != w {
			t.Errorf("row %d material = %q, want %q", i, tbl.Rows[i][2], w)
		}
	}
}

func TestFig1(t *testing.T) {
	tbl, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, stage := range []string{"CAD model", "FEA", "STL export", "Slicing", "G-code", "3D printing", "Testing"} {
		if !strings.Contains(out, stage) {
			t.Errorf("Fig. 1 missing stage %q", stage)
		}
	}
}

func TestFig2(t *testing.T) {
	out := Fig2()
	for _, want := range []string{"Theft of technical data", "Sabotage", "Counterfeiting"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 2 missing %q", want)
		}
	}
}

func TestFig3(t *testing.T) {
	tbl, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Errorf("Fig. 3 rows = %d", len(tbl.Rows))
	}
}

func TestFig4MismatchShrinksWithResolution(t *testing.T) {
	series, tbl, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(series.X) != 3 {
		t.Fatalf("series points = %d", len(series.X))
	}
	// Coarse-to-fine order: mismatch strictly decreasing.
	for i := 0; i+1 < len(series.Y); i++ {
		if series.Y[i] <= series.Y[i+1] {
			t.Errorf("mismatch should shrink with finer resolution: %v", series.Y)
		}
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestFig5FileSizesGrow(t *testing.T) {
	tbl, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Custom row should have more triangles than coarse row.
	if tbl.Rows[0][3] >= tbl.Rows[2][3] && len(tbl.Rows[0][3]) >= len(tbl.Rows[2][3]) {
		t.Errorf("triangle counts should grow coarse->custom: %v vs %v",
			tbl.Rows[0][3], tbl.Rows[2][3])
	}
}

func TestFig6Orientations(t *testing.T) {
	tbl, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "x-y" || tbl.Rows[1][0] != "x-z" {
		t.Errorf("orientation rows: %v", tbl.Rows)
	}
}

func TestFig7DiscontinuityAtAllResolutions(t *testing.T) {
	tbl, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1] == "0%" {
			t.Errorf("x-z %s shows no discontinuity; paper requires it at all resolutions", row[0])
		}
	}
}

func TestFig8CoarseOnlyVisible(t *testing.T) {
	tbl, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: coarse, fine, custom (spline) then intact.
	if tbl.Rows[0][3] != "yes" {
		t.Error("coarse x-y should be visibly disrupted")
	}
	for _, i := range []int{1, 2, 3} {
		if tbl.Rows[i][3] != "no" {
			t.Errorf("row %d should be clean: %v", i, tbl.Rows[i])
		}
	}
}

func TestFig9KtAboveOne(t *testing.T) {
	tbl, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if !strings.HasPrefix(tbl.Rows[0][1], "1.0") {
		t.Errorf("zero-depth Kt should be ~1: %v", tbl.Rows[0])
	}
}

func TestFig10SphereArtifacts(t *testing.T) {
	tbl, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Row 2 (solid, removal) prints dense: no cavity after wash.
	if tbl.Rows[2][1] != "model" || tbl.Rows[2][3] != "none" {
		t.Errorf("solid-removal row: %v", tbl.Rows[2])
	}
	// Rows 0, 1, 3 leave a cavity.
	for _, i := range []int{0, 1, 3} {
		if tbl.Rows[i][3] != "yes" {
			t.Errorf("row %d should leave cavity: %v", i, tbl.Rows[i])
		}
	}
}

func TestSideChannelLeakage(t *testing.T) {
	tbl, err := SideChannelLeakage()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestKeySpace(t *testing.T) {
	tbl, rep, err := KeySpace()
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoodKeys != 2 || rep.TotalKeys != 6 {
		t.Errorf("key space report: %+v", rep)
	}
	if len(tbl.Rows) != 6 {
		t.Errorf("matrix rows = %d", len(tbl.Rows))
	}
}

func TestSTLTheftResolutionFrozen(t *testing.T) {
	tbl, err := STLTheft()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	// Coarse exports: no orientation prints Good.
	for _, row := range tbl.Rows {
		if row[0] == "coarse" && row[2] == "good" {
			t.Errorf("stolen coarse STL should never print good: %v", row)
		}
		// x-z is always defective regardless of export resolution.
		if row[1] == "x-z" && row[2] != "defective" {
			t.Errorf("stolen STL in x-z should be defective: %v", row)
		}
	}
	// Custom export in x-y leaks a good print.
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "custom" && row[1] == "x-y" && row[2] == "good" {
			found = true
		}
	}
	if !found {
		t.Error("custom export in x-y should print good")
	}
}

func TestAblationMultiSplit(t *testing.T) {
	tbl, err := AblationMultiSplit()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// Correct-key rows are good; wrong-key rows are defective.
	for i, row := range tbl.Rows {
		wantGood := i%2 == 0
		if wantGood && row[2] != "good" {
			t.Errorf("row %d should be good: %v", i, row)
		}
		if !wantGood && row[2] != "defective" {
			t.Errorf("row %d should be defective: %v", i, row)
		}
	}
}

func TestAblationHealing(t *testing.T) {
	tbl, err := AblationHealing()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Bond quality must be non-decreasing with heal fraction.
	prev := ""
	for _, row := range tbl.Rows {
		if prev != "" && row[1] < prev {
			t.Errorf("bond quality should not decrease with healing: %v", tbl.Rows)
		}
		prev = row[1]
	}
}

func TestNDTFlagsAttacks(t *testing.T) {
	tbl, err := NDT()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	if tbl.Rows[0][5] != "no" {
		t.Errorf("clean print flagged: %v", tbl.Rows[0])
	}
	for _, i := range []int{1, 2, 3} {
		if tbl.Rows[i][5] != "YES" {
			t.Errorf("attack row %d not flagged: %v", i, tbl.Rows[i])
		}
	}
}

func TestTable2ExtendedPredictions(t *testing.T) {
	tbl, err := Table2Extended(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tbl.Rows))
	}
	// Row order: intact x-y, coarse/fine/custom x-y, intact x-z, then x-z.
	get := func(i int) string { return tbl.Rows[i][3] } // failure strain cell
	// The genuine condition (custom x-y, row 3) matches intact x-y
	// (row 0) within noise, while coarse x-y (row 1) is heavily reduced.
	intact := parseMean(t, get(0))
	coarse := parseMean(t, get(1))
	custom := parseMean(t, get(3))
	if coarse > 0.6*intact {
		t.Errorf("coarse x-y strain %v vs intact %v: too strong", coarse, intact)
	}
	if custom < 0.85*intact {
		t.Errorf("custom x-y strain %v vs intact %v: genuine condition compromised", custom, intact)
	}
	// Every x-z split row is well below intact x-z (row 4). The margin
	// leaves room for small-sample noise (n = 5 replicates).
	intactXZ := parseMean(t, get(4))
	for _, i := range []int{5, 6, 7} {
		if v := parseMean(t, get(i)); v > 0.65*intactXZ {
			t.Errorf("x-z row %d strain %v vs intact %v", i, v, intactXZ)
		}
	}
}

func parseMean(t *testing.T, cell string) float64 {
	t.Helper()
	var mean, std float64
	if _, err := fmt.Sscanf(strings.ReplaceAll(cell, "±", " "), "%g %g", &mean, &std); err != nil {
		t.Fatalf("cannot parse stat cell %q: %v", cell, err)
	}
	return mean
}
