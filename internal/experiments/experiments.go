// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns renderable report structures; the
// cmd/paperbench binary prints them and the top-level benchmarks time
// them. The per-experiment index lives in DESIGN.md §5 and the measured
// results in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"math"

	"obfuscade/internal/brep"
	"obfuscade/internal/core"
	"obfuscade/internal/fea"
	"obfuscade/internal/gcode"
	"obfuscade/internal/geom"
	"obfuscade/internal/inspect"
	"obfuscade/internal/mech"
	"obfuscade/internal/mesh"
	"obfuscade/internal/parallel"
	"obfuscade/internal/printer"
	"obfuscade/internal/report"
	"obfuscade/internal/sidechannel"
	"obfuscade/internal/slicer"
	"obfuscade/internal/stl"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/tessellate"
	"obfuscade/internal/voxel"
)

// splitBarPart builds the spline-split tensile bar used throughout §3.1.
func splitBarPart() (*brep.Part, error) {
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		return nil, err
	}
	s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
	if err != nil {
		return nil, err
	}
	if err := brep.SplitBySpline(p, "bar", s); err != nil {
		return nil, err
	}
	return p, nil
}

func intactBarPart() (*brep.Part, error) {
	return brep.NewTensileBar("bar", brep.DefaultTensileBar())
}

// runPipeline executes the process chain for a fresh split or intact bar.
func runPipeline(split bool, res tessellate.Resolution, o mech.Orientation,
	prof printer.Profile) (*supplychain.Run, error) {
	var part *brep.Part
	var err error
	if split {
		part, err = splitBarPart()
	} else {
		part, err = intactBarPart()
	}
	if err != nil {
		return nil, err
	}
	pl := supplychain.Pipeline{Resolution: res, Orientation: o, Printer: prof}
	return pl.Execute(part)
}

// Table1 regenerates the paper's Table 1 (risks and mitigations per AM
// stage) and verifies that every executable attack in the catalog is
// caught by its paired mitigation.
func Table1() (*report.Table, error) {
	// Exercise the executable attack/mitigation pairs before rendering,
	// so the table is backed by working checks rather than prose.
	part, err := intactBarPart()
	if err != nil {
		return nil, err
	}
	m, err := tessellate.Tessellate(part, tessellate.Coarse)
	if err != nil {
		return nil, err
	}
	ref := m.Clone()

	// STL void attack vs geometry validation.
	if err := supplychain.VoidAttack(m, 7); err != nil {
		return nil, err
	}
	if len(m.Validate(1e-9)) == 0 {
		return nil, fmt.Errorf("experiments: void attack evaded validation")
	}
	// Scaling attack vs reference diff.
	m2 := ref.Clone()
	if err := supplychain.ScaleAttack(m2, 1.01); err != nil {
		return nil, err
	}
	if stl.Compare(ref, m2).Identical(1e-6) {
		t := "experiments: scaling attack evaded diff"
		return nil, fmt.Errorf("%s", t)
	}
	return supplychain.Table1(), nil
}

// Table2 regenerates the tensile-property table: four groups (spline/
// intact x x-y/x-z), Coarse STL, FDM printer, n replicates. The groups
// run concurrently; group i always derives its noise from seed+i, so the
// table matches a serial run.
func Table2(n int, seed int64) (*report.Table, []mech.GroupResult, error) {
	prof := printer.DimensionElite()
	type g struct {
		name  string
		split bool
		o     mech.Orientation
	}
	cfgs := []g{
		{"Spline x-y", true, mech.XY},
		{"Spline x-z", true, mech.XZ},
		{"Intact x-y", false, mech.XY},
		{"Intact x-z", false, mech.XZ},
	}
	groups, err := parallel.Map(context.Background(), len(cfgs), 0, func(i int) (mech.GroupResult, error) {
		cfg := cfgs[i]
		run, err := runPipeline(cfg.split, tessellate.Coarse, cfg.o, prof)
		if err != nil {
			return mech.GroupResult{}, fmt.Errorf("experiments: %s: %w", cfg.name, err)
		}
		pl := supplychain.Pipeline{Resolution: tessellate.Coarse, Orientation: cfg.o, Printer: prof}
		return pl.TestPrinted(run, cfg.name, n, seed+int64(i))
	})
	if err != nil {
		return nil, nil, err
	}

	t := &report.Table{
		Title:   "Table 2: Tensile properties of specimens containing spline split feature (FDM, Coarse STL)",
		Headers: []string{"Property", "Spline x-y", "Spline x-z", "Intact x-y", "Intact x-z"},
	}
	row := func(name string, f func(mech.GroupResult) mech.Stat) {
		cells := []string{name}
		for _, g := range groups {
			cells = append(cells, f(g).String())
		}
		t.AddRow(cells...)
	}
	row("Young's modulus (GPa)", func(g mech.GroupResult) mech.Stat { return g.Young })
	row("Ultimate tensile strength (MPa)", func(g mech.GroupResult) mech.Stat { return g.UTS })
	row("Failure strain (mm/mm)", func(g mech.GroupResult) mech.Stat { return g.FailureStrain })
	row("Toughness (kJ/m^3)", func(g mech.GroupResult) mech.Stat { return g.Toughness })
	return t, groups, nil
}

// Table3 regenerates the embedded-sphere printing results: the material
// deposited for the sphere feature in each of the four CAD variants.
func Table3() (*report.Table, error) {
	prof := printer.DimensionElite()
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	const r = 3.175

	t := &report.Table{
		Title:   "Table 3: 3D printing results for four rectangular prism models (Fine STL)",
		Headers: []string{"CAD operation", "CAD sphere feature", "Material printed for sphere feature"},
	}
	variants := []struct {
		op, feat string
		opts     brep.EmbedOpts
	}{
		{"Without material removal", "Solid", brep.EmbedOpts{}},
		{"Without material removal", "Surface", brep.EmbedOpts{SurfaceBody: true}},
		{"With material removal", "Solid", brep.EmbedOpts{MaterialRemoval: true}},
		{"With material removal", "Surface", brep.EmbedOpts{MaterialRemoval: true, SurfaceBody: true}},
	}
	rows, err := parallel.Map(context.Background(), len(variants), 0, func(i int) (string, error) {
		tc := variants[i]
		p, err := brep.NewRectPrism("prism", size)
		if err != nil {
			return "", err
		}
		if err := brep.EmbedSphere(p, "prism", c, r, tc.opts); err != nil {
			return "", err
		}
		pl := supplychain.Pipeline{
			Resolution:  tessellate.Fine,
			Orientation: mech.XY,
			Printer:     prof,
			PrintOpts:   printer.Options{KeepSupport: true},
		}
		run, err := pl.Execute(p)
		if err != nil {
			return "", err
		}
		x, y, z := run.Build.Grid.Locate(c)
		switch run.Build.Grid.At(x, y, z) {
		case voxel.Model:
			return "Model material", nil
		case voxel.Support:
			return "Support material", nil
		default:
			return "Empty", nil
		}
	})
	if err != nil {
		return nil, err
	}
	for i, label := range rows {
		t.AddRow(variants[i].op, variants[i].feat, label)
	}
	return t, nil
}

// Fig1 traces the full AM process chain on the protected bar, reporting
// each stage's artifact as in the paper's Fig. 1 block diagram.
func Fig1() (*report.Table, error) {
	part, err := splitBarPart()
	if err != nil {
		return nil, err
	}
	pl := supplychain.Pipeline{
		Resolution:  tessellate.Fine,
		Orientation: mech.XY,
		Printer:     printer.DimensionElite(),
		RunFEA:      true,
	}
	run, err := pl.Execute(part)
	if err != nil {
		return nil, err
	}
	sim, err := gcode.Simulate(run.GCode, gcode.DimensionEliteEnvelope())
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Fig. 1: AM process chain artifacts (CAD -> FEA -> STL -> slice/G-code -> print -> test)",
		Headers: []string{"Stage", "Artifact", "Key figure"},
	}
	t.AddRow("CAD model", fmt.Sprintf("%d bodies, %d features", len(part.Bodies), len(part.History)),
		fmt.Sprintf("%d bytes native CAD", len(run.CADBytes)))
	t.AddRow("FEA optimisation", "plane-stress check of the gauge section",
		fmt.Sprintf("Kt = %.2f at split tip", run.DesignKt))
	t.AddRow("STL export", fmt.Sprintf("%d triangles", run.STLStats.Triangles),
		fmt.Sprintf("%d bytes binary STL", len(run.STLBytes)))
	t.AddRow("Slicing", fmt.Sprintf("%d layers @ %.4f mm", len(run.Sliced.Layers), run.Sliced.Opts.LayerHeight),
		fmt.Sprintf("%d toolpath moves", countMoves(run.Toolpaths)))
	t.AddRow("G-code", fmt.Sprintf("%d commands", len(run.GCode.Commands)),
		fmt.Sprintf("%.1f min print, %.0f mm extruded", sim.PrintTime/60, sim.ExtrudeLength))
	t.AddRow("3D printing", fmt.Sprintf("%.0f mm^3 model, %.0f mm^3 support",
		run.Build.ModelVolume, run.Build.SupportVolume),
		fmt.Sprintf("%d seams recorded", len(run.Build.Seams)))
	t.AddRow("Testing", "CT + visual + tensile",
		fmt.Sprintf("%d internal cavities, disruption %.3f mm",
			len(run.Build.Grid.InternalCavities()), run.Build.SurfaceDisruption))
	return t, nil
}

func countMoves(paths []*slicer.LayerToolpath) int {
	n := 0
	for _, p := range paths {
		n += len(p.Moves)
	}
	return n
}

// Fig2 renders the attack taxonomy tree.
func Fig2() string {
	out := "Fig. 2: Taxonomy of attacks in additive manufacturing\n"
	supplychain.Taxonomy().Walk(func(depth int, n *supplychain.TaxonomyNode) {
		for i := 0; i < depth; i++ {
			out += "  "
		}
		out += n.Name
		if len(n.AttackIDs) > 0 {
			out += fmt.Sprintf("  [%v]", n.AttackIDs)
		}
		out += "\n"
	})
	return out
}

// Fig3 reports the artifact stages of one design (CAD model, FEA
// optimisation, slicing/tool path, STL conversion) as quantitative stage
// statistics.
func Fig3() (*report.Table, error) {
	part, err := intactBarPart()
	if err != nil {
		return nil, err
	}
	cad, err := brep.Save(part)
	if err != nil {
		return nil, err
	}
	// FEA on the pristine gauge section.
	sol, kt, err := fea.SplitTipAnalysis(33, 6, 3.2, 2000, 0.35, 0, 60)
	if err != nil {
		return nil, err
	}
	maxStress, _, _ := sol.MaxStress()
	t := &report.Table{
		Title:   "Fig. 3: 3D artifact stages of the tensile bar",
		Headers: []string{"Stage", "Quantity", "Value"},
	}
	t.AddRow("CAD model", "native file size", fmt.Sprintf("%d bytes", len(cad)))
	t.AddRow("FEA model", "uniform gauge stress / Kt",
		fmt.Sprintf("%.1f MPa / %.2f", maxStress, kt))
	for _, res := range tessellate.Presets() {
		m, err := tessellate.Tessellate(part, res)
		if err != nil {
			return nil, err
		}
		t.AddRow("STL ("+res.Name+")", "triangles / bytes",
			fmt.Sprintf("%d / %d", m.TriangleCount(), stl.BinarySize(m.TriangleCount())))
	}
	m, _ := tessellate.Tessellate(part, tessellate.Fine)
	sliced, err := slicer.Slice(m, slicer.DefaultOptions())
	if err != nil {
		return nil, err
	}
	paths, err := sliced.Toolpaths()
	if err != nil {
		return nil, err
	}
	t.AddRow("Slicing & tool path", "layers / moves",
		fmt.Sprintf("%d / %d", len(sliced.Layers), countMoves(paths)))
	return t, nil
}

// Fig4 measures the tessellation-induced gap along the spline split as a
// function of the STL resolution: the paper's Fig. 4 magnified views made
// quantitative.
func Fig4() (*report.Series, *report.Table, error) {
	part, err := splitBarPart()
	if err != nil {
		return nil, nil, err
	}
	s := &report.Series{
		Name:   "Fig. 4: tessellation mismatch along the spline split",
		XLabel: "deviation(mm)",
		YLabel: "max-gap(mm)",
	}
	t := &report.Table{
		Title: "Fig. 4: gap geometry along the split",
		Headers: []string{"Resolution", "Deviation (mm)", "Max mismatch (mm)",
			"Interface mean width (mm)", "Crossings/layer (x-y)"},
	}
	for _, res := range tessellate.Presets() {
		mm, ok, err := tessellate.SplitMismatch(part, res)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return nil, nil, fmt.Errorf("experiments: no split boundary found")
		}
		m, err := tessellate.Tessellate(part, res)
		if err != nil {
			return nil, nil, err
		}
		sliced, err := slicer.Slice(m, slicer.DefaultOptions())
		if err != nil {
			return nil, nil, err
		}
		st := sliced.InterfaceStatsBetween("bar-upper", "bar-lower")
		s.Add(res.Deviation, mm)
		t.AddRow(res.Name, fmt.Sprintf("%.3f", res.Deviation),
			fmt.Sprintf("%.4f", mm), fmt.Sprintf("%.4f", st.MeanWidth),
			fmt.Sprintf("%.0f", st.MeanCrossings))
	}
	return s, t, nil
}

// Fig5 reports the meaning of the STL resolution parameters: angle and
// deviation per preset and the resulting triangle counts / file sizes for
// the tensile bar.
func Fig5() (*report.Table, error) {
	part, err := intactBarPart()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Fig. 5: STL resolution parameters and their effect",
		Headers: []string{"Setting", "Angle (deg)", "Deviation (mm)", "Triangles", "Binary STL bytes"},
	}
	for _, res := range tessellate.Presets() {
		m, err := tessellate.Tessellate(part, res)
		if err != nil {
			return nil, err
		}
		t.AddRow(res.Name, fmt.Sprintf("%.0f", res.AngleDeg),
			fmt.Sprintf("%.3f", res.Deviation),
			fmt.Sprintf("%d", m.TriangleCount()),
			fmt.Sprintf("%d", stl.BinarySize(m.TriangleCount())))
	}
	return t, nil
}

// Fig6 reports the two print orientations: build height, layer count and
// footprint for each.
func Fig6() (*report.Table, error) {
	prof := printer.DimensionElite()
	t := &report.Table{
		Title: "Fig. 6: print orientations x-y and x-z",
		Headers: []string{"Orientation", "Footprint (mm)", "Build height (mm)", "Layers",
			"Support (mm^3)"},
	}
	for _, o := range []mech.Orientation{mech.XY, mech.XZ} {
		run, err := runPipeline(false, tessellate.Coarse, o, prof)
		if err != nil {
			return nil, err
		}
		size := run.Mesh.Bounds().Size()
		t.AddRow(o.String(),
			fmt.Sprintf("%.0f x %.1f", size.X, size.Y),
			fmt.Sprintf("%.1f", size.Z),
			fmt.Sprintf("%d", len(run.Sliced.Layers)),
			fmt.Sprintf("%.0f", run.Build.SupportVolume))
	}
	return t, nil
}

// Fig7 measures the x-z slicing discontinuity: the fraction of layers in
// which the two split bodies are fully separated, per STL resolution —
// non-zero at every resolution, the paper's key x-z observation.
func Fig7() (*report.Table, error) {
	prof := printer.DimensionElite()
	t := &report.Table{
		Title: "Fig. 7: spline split discontinuity in x-z orientation",
		Headers: []string{"Resolution", "Discontinuous layers", "Seam bond quality",
			"Max void width (mm)"},
	}
	presets := tessellate.Presets()
	rows, err := parallel.Map(context.Background(), len(presets), 0, func(i int) ([4]string, error) {
		res := presets[i]
		run, err := runPipeline(true, res, mech.XZ, prof)
		if err != nil {
			return [4]string{}, err
		}
		seam := run.Build.SeamBetween("bar-upper", "bar-lower")
		if seam == nil {
			return [4]string{}, fmt.Errorf("experiments: x-z seam missing at %s", res.Name)
		}
		return [4]string{res.Name,
			fmt.Sprintf("%.0f%%", 100*seam.DiscontinuousFraction),
			fmt.Sprintf("%.2f", seam.BondQuality),
			fmt.Sprintf("%.4f", seam.Stats.MaxWidth)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3])
	}
	return t, nil
}

// Fig8 measures the x-y surface disruption: visible at Coarse STL, absent
// at Fine/Custom, per the paper's Fig. 8 comparison with intact prints.
func Fig8() (*report.Table, error) {
	prof := printer.DimensionElite()
	t := &report.Table{
		Title: "Fig. 8: spline split surface appearance in x-y orientation",
		Headers: []string{"Specimen", "Resolution", "Disruption width (mm)",
			"Visible?", "Seam bond quality"},
	}
	// The last job is the intact coarse reference row.
	presets := tessellate.Presets()
	rows, err := parallel.Map(context.Background(), len(presets)+1, 0, func(i int) ([5]string, error) {
		if i == len(presets) {
			run, err := runPipeline(false, tessellate.Coarse, mech.XY, prof)
			if err != nil {
				return [5]string{}, err
			}
			return [5]string{"Intact", "coarse",
				fmt.Sprintf("%.4f", run.Build.SurfaceDisruption), "no", "1.00"}, nil
		}
		res := presets[i]
		run, err := runPipeline(true, res, mech.XY, prof)
		if err != nil {
			return [5]string{}, err
		}
		visible := "no"
		if run.Build.SurfaceDisrupted() {
			visible = "yes"
		}
		bond := 1.0
		if s := run.Build.SeamBetween("bar-upper", "bar-lower"); s != nil {
			bond = s.BondQuality
		}
		return [5]string{"Spline", res.Name,
			fmt.Sprintf("%.4f", run.Build.SurfaceDisruption), visible,
			fmt.Sprintf("%.2f", bond)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3], r[4])
	}
	return t, nil
}

// Fig9 runs the split-tip stress analysis: peak stress location and the
// concentration factor that drives premature failure.
func Fig9() (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig. 9: tensile failure initiation at the spline tip",
		Headers: []string{"Slit depth (mm)", "Kt", "Peak stress site (x, y) mm", "Nominal stress (MPa)"},
	}
	for _, depth := range []float64{0, 0.75, 1.5} {
		sol, kt, err := fea.SplitTipAnalysis(33, 6, 3.2, 2000, 0.35, depth, 80)
		if err != nil {
			return nil, err
		}
		_, ix, iy := sol.MaxStress()
		t.AddRow(fmt.Sprintf("%.2f", depth), fmt.Sprintf("%.2f", kt),
			fmt.Sprintf("(%.1f, %.1f)", float64(ix)*sol.Model.DX, float64(iy)*sol.Model.DY),
			fmt.Sprintf("%.1f", sol.NominalStress()))
	}
	return t, nil
}

// Fig10 reproduces the embedded-sphere artifacts: tool-path material at
// the sphere, support volume, and the cut-open (cavity) state after
// support wash-out, for the four CAD variants.
func Fig10() (*report.Table, error) {
	prof := printer.DimensionElite()
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	const r = 3.175
	t := &report.Table{
		Title: "Fig. 10: embedded-sphere prints (sliced material, support, cavity after wash-out)",
		Headers: []string{"Variant", "Sphere material", "Support volume (mm^3)",
			"Cavity after wash", "Cavity volume (mm^3)"},
	}
	variants := []struct {
		name string
		opts brep.EmbedOpts
	}{
		{"solid, no removal", brep.EmbedOpts{}},
		{"surface, no removal", brep.EmbedOpts{SurfaceBody: true}},
		{"solid, removal", brep.EmbedOpts{MaterialRemoval: true}},
		{"surface, removal", brep.EmbedOpts{MaterialRemoval: true, SurfaceBody: true}},
	}
	rows, err := parallel.Map(context.Background(), len(variants), 0, func(i int) ([5]string, error) {
		tc := variants[i]
		p, err := brep.NewRectPrism("prism", size)
		if err != nil {
			return [5]string{}, err
		}
		if err := brep.EmbedSphere(p, "prism", c, r, tc.opts); err != nil {
			return [5]string{}, err
		}
		pl := supplychain.Pipeline{
			Resolution: tessellate.Fine, Orientation: mech.XY, Printer: prof,
			PrintOpts: printer.Options{KeepSupport: true},
		}
		run, err := pl.Execute(p)
		if err != nil {
			return [5]string{}, err
		}
		x, y, z := run.Build.Grid.Locate(c)
		mat := run.Build.Grid.At(x, y, z).String()
		supportVol := run.Build.SupportVolume
		// Wash out and inspect.
		washed := run.Build.Grid.Clone()
		washed.Replace(voxel.Support, voxel.Empty)
		cavities := washed.InternalCavities()
		cav := "none"
		var cavVol float64
		if len(cavities) > 0 {
			cav = "yes"
			cavVol = float64(cavities[0].Voxels) * washed.VoxelVolume()
		}
		return [5]string{tc.name, mat, fmt.Sprintf("%.0f", supportVol), cav,
			fmt.Sprintf("%.1f", cavVol)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3], r[4])
	}
	return t, nil
}

// PolyJetReplication repeats the spline-split orientation/resolution
// conclusions on the material-jetting printer profile (Objet30 Pro,
// 16 µm layers) — the paper's §3.1 cross-printer validation. The layer
// count is two orders of magnitude higher, so only Coarse and Custom are
// run.
func PolyJetReplication() (*report.Table, error) {
	prof := printer.Objet30Pro()
	t := &report.Table{
		Title: "PolyJet replication (Objet30 Pro, VeroClear): feature presence vs resolution/orientation",
		Headers: []string{"Resolution", "Orientation", "Discontinuous layers",
			"Surface disruption (mm)", "Feature manifested?"},
	}
	type job struct {
		res tessellate.Resolution
		o   mech.Orientation
	}
	var jobs []job
	for _, res := range []tessellate.Resolution{tessellate.Coarse, tessellate.Custom} {
		for _, o := range []mech.Orientation{mech.XY, mech.XZ} {
			jobs = append(jobs, job{res, o})
		}
	}
	rows, err := parallel.Map(context.Background(), len(jobs), 0, func(i int) ([5]string, error) {
		j := jobs[i]
		run, err := runPipeline(true, j.res, j.o, prof)
		if err != nil {
			return [5]string{}, err
		}
		disc := 0.0
		if s := run.Build.SeamBetween("bar-upper", "bar-lower"); s != nil {
			disc = s.DiscontinuousFraction
		}
		manifested := "no"
		if disc > 0.1 || run.Build.SurfaceDisrupted() {
			manifested = "yes"
		}
		return [5]string{j.res.Name, j.o.String(), fmt.Sprintf("%.0f%%", 100*disc),
			fmt.Sprintf("%.4f", run.Build.SurfaceDisruption), manifested}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3], r[4])
	}
	return t, nil
}

// SideChannelLeakage reproduces the §2 information-leakage discussion:
// tool-path reconstruction error from acoustic/magnetic emanations versus
// measurement noise.
func SideChannelLeakage() (*report.Table, error) {
	run, err := runPipeline(false, tessellate.Coarse, mech.XY, printer.DimensionElite())
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Side-channel IP leakage (refs [4], [16]): tool-path reconstruction",
		Headers: []string{"Frequency noise", "Mean error (mm)", "Recovered extrusion (mm)", "True extrusion (mm)"},
	}
	truthLen := slicer.TotalExtruded(run.Toolpaths)
	for _, noise := range []float64{0, 0.01, 0.05} {
		opts := sidechannel.DefaultOptions()
		opts.FreqNoiseStd = noise
		tr, err := sidechannel.Emanate(run.Toolpaths, opts)
		if err != nil {
			return nil, err
		}
		rec, err := sidechannel.Reconstruct(tr, opts)
		if err != nil {
			return nil, err
		}
		truth := sidechannel.GroundTruth(run.Toolpaths)
		meanErr, err := sidechannel.MeanError(rec, truth)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f%%", 100*noise), fmt.Sprintf("%.3f", meanErr),
			fmt.Sprintf("%.0f", rec.ExtrudedLength), fmt.Sprintf("%.0f", truthLen))
	}
	return t, nil
}

// KeySpace runs the logic-locking analysis: the quality matrix over the
// full processing key space and the brute-force cost estimate.
func KeySpace() (*report.Table, core.KeySpaceReport, error) {
	prot, err := core.NewProtectedBar("bar", false)
	if err != nil {
		return nil, core.KeySpaceReport{}, err
	}
	rep, entries, err := core.AnalyzeKeySpace(prot, printer.DimensionElite())
	if err != nil {
		return nil, core.KeySpaceReport{}, err
	}
	t := core.MatrixTable(entries)
	return t, rep, nil
}

// AblationHealing quantifies the design choice DESIGN.md calls out: how
// the printer's road-healing width changes the x-y seam bond (and thus
// whether the coarse x-y print is merely degraded or fully defective).
func AblationHealing() (*report.Table, error) {
	part, err := splitBarPart()
	if err != nil {
		return nil, err
	}
	m, err := tessellate.Tessellate(part, tessellate.Coarse)
	if err != nil {
		return nil, err
	}
	sliced, err := slicer.Slice(m, slicer.DefaultOptions())
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation: road healing fraction vs coarse x-y seam bond quality",
		Headers: []string{"Heal fraction", "Bond quality", "Grade threshold"},
	}
	for _, heal := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		prof := printer.DimensionElite()
		prof.HealFraction = heal
		b, err := printer.Print(sliced, prof, printer.Options{})
		if err != nil {
			return nil, err
		}
		seam := b.SeamBetween("bar-upper", "bar-lower")
		if seam == nil {
			return nil, fmt.Errorf("experiments: seam missing")
		}
		grade := "good"
		switch {
		case seam.BondQuality < 0.3:
			grade = "defective"
		case seam.BondQuality < 0.7:
			grade = "degraded"
		}
		t.AddRow(fmt.Sprintf("%.2f", heal), fmt.Sprintf("%.3f", seam.BondQuality), grade)
	}
	return t, nil
}

// AblationAmplitude sweeps the split-curve wave amplitude: larger
// amplitude lengthens the spline (the paper quotes arc length 3.5x the
// gauge width) and strengthens the x-z sabotage without changing the x-y
// appearance at high resolution.
func AblationAmplitude() (*report.Table, error) {
	prof := printer.DimensionElite()
	t := &report.Table{
		Title: "Ablation: split amplitude vs seam geometry",
		Headers: []string{"Amplitude (mm)", "Arc length (mm)", "x-z discontinuous layers",
			"x-y disruption (mm)"},
	}
	for _, amp := range []float64{0.5, 1.0, 2.0, 2.5} {
		d := brep.DefaultTensileBar()
		s, err := brep.SplitSplineThroughGauge(d, amp, 3)
		if err != nil {
			return nil, err
		}
		arc := s.ArcLength()
		build := func(o mech.Orientation) (*printer.Build, error) {
			p, err := brep.NewTensileBar("bar", d)
			if err != nil {
				return nil, err
			}
			s2, err := brep.SplitSplineThroughGauge(d, amp, 3)
			if err != nil {
				return nil, err
			}
			if err := brep.SplitBySpline(p, "bar", s2); err != nil {
				return nil, err
			}
			pl := supplychain.Pipeline{Resolution: tessellate.Coarse, Orientation: o, Printer: prof}
			run, err := pl.Execute(p)
			if err != nil {
				return nil, err
			}
			return run.Build, nil
		}
		xz, err := build(mech.XZ)
		if err != nil {
			return nil, err
		}
		xy, err := build(mech.XY)
		if err != nil {
			return nil, err
		}
		disc := 0.0
		if seam := xz.SeamBetween("bar-upper", "bar-lower"); seam != nil {
			disc = seam.DiscontinuousFraction
		}
		t.AddRow(fmt.Sprintf("%.1f", amp), fmt.Sprintf("%.1f", arc),
			fmt.Sprintf("%.0f%%", 100*disc),
			fmt.Sprintf("%.4f", xy.SurfaceDisruption))
	}
	return t, nil
}

// STLTheft evaluates the paper's primary counterfeiting threat — a stolen
// STL file — across export resolutions and print orientations. The STL
// freezes the resolution component of the process key, so an owner who
// releases only Coarse exports leaves the thief no clean option.
func STLTheft() (*report.Table, error) {
	prof := printer.DimensionElite()
	t := &report.Table{
		Title: "Counterfeiting from a stolen STL: export resolution is frozen in the file",
		Headers: []string{"Stolen export", "Print orientation", "Grade",
			"Surface (mm)", "Discont. layers"},
	}
	type job struct {
		res tessellate.Resolution
		o   mech.Orientation
	}
	var jobs []job
	for _, res := range tessellate.Presets() {
		for _, o := range []mech.Orientation{mech.XY, mech.XZ} {
			jobs = append(jobs, job{res, o})
		}
	}
	rows, err := parallel.Map(context.Background(), len(jobs), 0, func(i int) ([5]string, error) {
		j := jobs[i]
		part, err := splitBarPart()
		if err != nil {
			return [5]string{}, err
		}
		m, err := tessellate.Tessellate(part, j.res)
		if err != nil {
			return [5]string{}, err
		}
		data, err := stl.Marshal(m, stl.Binary, part.Name)
		if err != nil {
			return [5]string{}, err
		}
		_, q, err := core.ManufactureFromSTL(data, j.o, prof)
		if err != nil {
			return [5]string{}, err
		}
		return [5]string{j.res.Name, j.o.String(), q.Grade.String(),
			fmt.Sprintf("%.4f", q.SurfaceDisruptionMM),
			fmt.Sprintf("%.0f%%", 100*q.DiscontinuousFraction)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3], r[4])
	}
	return t, nil
}

// AblationMultiSplit compares one vs two stacked split features: more
// seams, stronger sabotage under the wrong key, unchanged quality under
// the correct key.
func AblationMultiSplit() (*report.Table, error) {
	prof := printer.DimensionElite()
	t := &report.Table{
		Title:   "Ablation: number of split features",
		Headers: []string{"Features", "Key", "Grade", "Seams", "Failure strain"},
	}
	single, err := core.NewProtectedBar("bar", false)
	if err != nil {
		return nil, err
	}
	double, err := core.NewDoubleSplitBar("bar")
	if err != nil {
		return nil, err
	}
	for _, tc := range []struct {
		label string
		prot  *core.Protected
	}{
		{"1 split", single},
		{"2 splits", double},
	} {
		for _, key := range []core.Key{
			tc.prot.Manifest.Key,
			{Resolution: tessellate.Coarse, Orientation: mech.XZ},
		} {
			res, err := core.Manufacture(tc.prot, key, prof)
			if err != nil {
				return nil, err
			}
			spec := mech.Specimen{Mat: mech.ABS(key.Orientation)}
			if res.Quality.SeamBondQuality < 1 {
				spec.SeamPresent = true
				spec.SeamQuality = res.Quality.SeamBondQuality
				spec.Kt = 2.6
				spec.ModulusKnockdown = 0.03
			}
			g, err := mech.TestGroup("abl", spec, 5, 11)
			if err != nil {
				return nil, err
			}
			t.AddRow(tc.label, key.String(), res.Quality.Grade.String(),
				fmt.Sprintf("%d", len(res.Run.Build.Seams)),
				g.FailureStrain.String())
		}
	}
	return t, nil
}

// ServiceLife extends Table 2 with the paper's "inferior service life"
// claim: Coffin-Manson fatigue lives at a common duty strain amplitude
// for the four specimen groups.
func ServiceLife() (*report.Table, error) {
	prof := printer.DimensionElite()
	const amplitude = 0.004
	t := &report.Table{
		Title:   "Service life: fatigue cycles at strain amplitude 0.004 (Coarse STL)",
		Headers: []string{"Specimen", "Seam bond", "Cycles to failure", "vs intact"},
	}
	type cfg struct {
		name  string
		split bool
		o     mech.Orientation
	}
	intactLife := map[mech.Orientation]float64{}
	for _, c := range []cfg{
		{"Intact x-y", false, mech.XY},
		{"Intact x-z", false, mech.XZ},
		{"Spline x-y", true, mech.XY},
		{"Spline x-z", true, mech.XZ},
	} {
		run, err := runPipeline(c.split, tessellate.Coarse, c.o, prof)
		if err != nil {
			return nil, err
		}
		spec := mech.Specimen{Mat: mech.ABS(c.o)}
		bond := 1.0
		if seam := run.Build.SeamBetween("bar-upper", "bar-lower"); seam != nil {
			spec.SeamPresent = true
			spec.SeamQuality = seam.BondQuality
			spec.Kt = 2.6
			bond = seam.BondQuality
		}
		life, err := mech.FatigueLife(spec, amplitude)
		if err != nil {
			return nil, err
		}
		ratio := "1.0x"
		if c.split {
			ratio = fmt.Sprintf("%.2fx", life/intactLife[c.o])
		} else {
			intactLife[c.o] = life
		}
		t.AddRow(c.name, fmt.Sprintf("%.2f", bond), fmt.Sprintf("%.0f", life), ratio)
	}
	return t, nil
}

// NDT runs the non-destructive testing bench: CT comparison and
// dimensional metrology of a clean print and three attacked prints
// against the design intent (Table 1's "Testing" row, executable).
func NDT() (*report.Table, error) {
	prof := printer.DimensionElite()
	size := geom.V3(25.4, 12.7, 12.7)

	design, err := brep.NewRectPrism("prism", size)
	if err != nil {
		return nil, err
	}
	designMesh, err := tessellate.Tessellate(design, tessellate.Fine)
	if err != nil {
		return nil, err
	}
	ref, err := inspect.VoxelizeMesh(designMesh, 0.25, prof.LayerHeight)
	if err != nil {
		return nil, err
	}

	printIt := func(m *mesh.Mesh) (*printer.Build, error) {
		opts := slicer.DefaultOptions()
		opts.LayerHeight = prof.LayerHeight
		sliced, err := slicer.Slice(m, opts)
		if err != nil {
			return nil, err
		}
		return printer.Print(sliced, prof, printer.Options{})
	}

	t := &report.Table{
		Title: "NDT bench: CT + metrology vs supply-chain attacks",
		Headers: []string{"Scenario", "CT match", "Missing (mm^3)", "Cavities",
			"Dim delta (mm)", "Flagged?"},
	}
	addRow := func(name string, b *printer.Build) error {
		ct, err := inspect.CTCompare(b.Grid, ref)
		if err != nil {
			return err
		}
		dims := inspect.MeasureDimensions(b.Grid, designMesh)
		flagged := ct.Anomalous(0.08) || !dims.WithinTolerance(0.6)
		mark := "no"
		if flagged {
			mark = "YES"
		}
		t.AddRow(name, fmt.Sprintf("%.2f", ct.MatchFraction),
			fmt.Sprintf("%.0f", ct.MissingVolume),
			fmt.Sprintf("%d", ct.InternalCavities),
			fmt.Sprintf("%.2f", dims.Delta.Abs().Len()),
			mark)
		return nil
	}

	clean, err := printIt(designMesh.Clone())
	if err != nil {
		return nil, err
	}
	if err := addRow("clean print", clean); err != nil {
		return nil, err
	}

	trojanPart, err := brep.NewRectPrism("prism", size)
	if err != nil {
		return nil, err
	}
	if err := supplychain.CADTrojanAttack(trojanPart, nil); err != nil {
		return nil, err
	}
	trojanMesh, err := tessellate.Tessellate(trojanPart, tessellate.Fine)
	if err != nil {
		return nil, err
	}
	trojan, err := printIt(trojanMesh)
	if err != nil {
		return nil, err
	}
	if err := addRow("CAD Trojan cavity", trojan); err != nil {
		return nil, err
	}

	scaled := designMesh.Clone()
	if err := supplychain.ScaleAttack(scaled, 1.04); err != nil {
		return nil, err
	}
	scaledBuild, err := printIt(scaled)
	if err != nil {
		return nil, err
	}
	if err := addRow("4% scaling attack", scaledBuild); err != nil {
		return nil, err
	}

	// Porosity attack on the G-code, printed from the tampered program.
	opts := slicer.DefaultOptions()
	opts.LayerHeight = prof.LayerHeight
	sliced, err := slicer.Slice(designMesh.Clone(), opts)
	if err != nil {
		return nil, err
	}
	paths, err := sliced.Toolpaths()
	if err != nil {
		return nil, err
	}
	prog, err := gcode.Generate("prism", paths, gcode.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if err := supplychain.PorosityAttack(prog, 3); err != nil {
		return nil, err
	}
	porous, err := printer.PrintGCode(prog, prof, printer.Options{})
	if err != nil {
		return nil, err
	}
	if err := addRow("G-code porosity attack", porous); err != nil {
		return nil, err
	}
	return t, nil
}

// Table2ShapeCheck verifies the paper-vs-measured shape claims for
// Table 2 programmatically (used by tests and EXPERIMENTS.md).
func Table2ShapeCheck(groups []mech.GroupResult) error {
	if len(groups) != 4 {
		return fmt.Errorf("experiments: want 4 groups, got %d", len(groups))
	}
	splineXY, splineXZ, intactXY, intactXZ := groups[0], groups[1], groups[2], groups[3]
	if splineXY.FailureStrain.Mean > 0.6*intactXY.FailureStrain.Mean {
		return fmt.Errorf("x-y failure strain knockdown too small")
	}
	if splineXZ.FailureStrain.Mean > 0.5*intactXZ.FailureStrain.Mean {
		return fmt.Errorf("x-z failure strain knockdown too small")
	}
	if splineXY.Toughness.Mean > intactXY.Toughness.Mean/2 {
		return fmt.Errorf("x-y toughness knockdown below 2x")
	}
	if splineXZ.Toughness.Mean > intactXZ.Toughness.Mean/2 {
		return fmt.Errorf("x-z toughness knockdown below 2x")
	}
	if math.Abs(splineXZ.UTS.Mean-intactXZ.UTS.Mean)/intactXZ.UTS.Mean > 0.1 {
		return fmt.Errorf("x-z UTS should barely change")
	}
	if splineXY.UTS.Mean > 0.9*intactXY.UTS.Mean {
		return fmt.Errorf("x-y UTS should drop noticeably")
	}
	return nil
}

// Fig9Field renders the von Mises stress field of the slit gauge section
// as ASCII art — the terminal version of the paper's Fig. 9 contour plot.
func Fig9Field() (string, error) {
	sol, _, err := fea.SplitTipAnalysis(33, 6, 3.2, 2000, 0.35, 1.5, 80)
	if err != nil {
		return "", err
	}
	return sol.FieldASCII(), nil
}

// RiskMatrix exposes the quantified Table 1 risk ranking.
func RiskMatrix() *report.Table { return supplychain.RiskMatrix() }

// Fig10Sections renders cut-open mid sections of the no-removal and
// solid-removal sphere prints after support wash-out — the ASCII analogue
// of the paper's Fig. 10c/10d photographs.
func Fig10Sections() (hollow, dense string, err error) {
	prof := printer.DimensionElite()
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	build := func(opts brep.EmbedOpts) (string, error) {
		p, err := brep.NewRectPrism("prism", size)
		if err != nil {
			return "", err
		}
		if err := brep.EmbedSphere(p, "prism", c, 3.175, opts); err != nil {
			return "", err
		}
		pl := supplychain.Pipeline{
			Resolution: tessellate.Fine, Orientation: mech.XY, Printer: prof,
		}
		run, err := pl.Execute(p)
		if err != nil {
			return "", err
		}
		g := run.Build.Grid
		return g.SectionASCII(voxel.AxisY, g.NY/2, 100)
	}
	hollow, err = build(brep.EmbedOpts{})
	if err != nil {
		return "", "", err
	}
	dense, err = build(brep.EmbedOpts{MaterialRemoval: true})
	if err != nil {
		return "", "", err
	}
	return hollow, dense, nil
}

// Table2Extended predicts the full Table 2 across every STL resolution —
// the paper measured only Coarse; these are the model's predictions for
// the resolutions it did not print, including the genuine-key condition
// (Custom x-y) whose properties match the intact baseline.
func Table2Extended(n int, seed int64) (*report.Table, error) {
	prof := printer.DimensionElite()
	t := &report.Table{
		Title: "Table 2 extended: split-specimen tensile predictions across STL resolutions",
		Headers: []string{"Specimen", "E (GPa)", "UTS (MPa)",
			"Failure strain", "Toughness (kJ/m^3)"},
	}
	// Enumerate the jobs in the fixed serial order first, so job i keeps
	// the seed offset seed+i it has always had, then run them on the pool.
	type job struct {
		label, group string
		split        bool
		res          tessellate.Resolution
		o            mech.Orientation
	}
	var jobs []job
	for _, o := range []mech.Orientation{mech.XY, mech.XZ} {
		jobs = append(jobs, job{
			label: fmt.Sprintf("Intact %s", o), group: "intact",
			res: tessellate.Coarse, o: o,
		})
		for _, res := range tessellate.Presets() {
			jobs = append(jobs, job{
				label: fmt.Sprintf("Spline %s (%s)", o, res.Name), group: "split",
				split: true, res: res, o: o,
			})
		}
	}
	groups, err := parallel.Map(context.Background(), len(jobs), 0, func(i int) (mech.GroupResult, error) {
		j := jobs[i]
		run, err := runPipeline(j.split, j.res, j.o, prof)
		if err != nil {
			return mech.GroupResult{}, err
		}
		pl := supplychain.Pipeline{Resolution: j.res, Orientation: j.o, Printer: prof}
		return pl.TestPrinted(run, j.group, n, seed+int64(i))
	})
	if err != nil {
		return nil, err
	}
	for i, g := range groups {
		t.AddRow(jobs[i].label, g.Young.String(), g.UTS.String(),
			g.FailureStrain.String(), g.Toughness.String())
	}
	return t, nil
}
