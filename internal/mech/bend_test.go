package mech

import (
	"math"
	"testing"
)

func TestBendSetupValidate(t *testing.T) {
	if err := DefaultBendSetup().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultBendSetup()
	bad.Span = 5 // < 4x depth
	if err := bad.Validate(); err == nil {
		t.Error("expected error for shear-dominated span")
	}
	bad = DefaultBendSetup()
	bad.Width = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero width")
	}
}

func TestBendTestIntact(t *testing.T) {
	p, err := BendTest(Specimen{Mat: ABS(XY)}, DefaultBendSetup(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flexural modulus equals tensile modulus in this model.
	if math.Abs(p.FlexuralModulusGPa-1.98) > 0.01 {
		t.Errorf("flexural modulus = %v", p.FlexuralModulusGPa)
	}
	// Strength ~ 1.5x tensile flow stress at the failure strain.
	if p.FlexuralStrengthMPa < 40 || p.FlexuralStrengthMPa > 50 {
		t.Errorf("flexural strength = %v, want ~45 (1.5 x ~30)", p.FlexuralStrengthMPa)
	}
	// Deflection: eps*L^2/(6d) = 0.029*51.2^2/(6*3.2).
	want := 0.029 * 51.2 * 51.2 / (6 * 3.2)
	if math.Abs(p.FailureDeflectionMM-want) > 0.01*want {
		t.Errorf("deflection = %v, want %v", p.FailureDeflectionMM, want)
	}
}

func TestBendTestSplitKnockdown(t *testing.T) {
	setup := DefaultBendSetup()
	intact, err := BendTest(Specimen{Mat: ABS(XY)}, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	split, err := BendTest(Specimen{
		Mat: ABS(XY), SeamPresent: true, SeamQuality: 0.35, Kt: 2.6,
	}, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if split.FailureDeflectionMM > 0.55*intact.FailureDeflectionMM {
		t.Errorf("split deflection %v vs intact %v: want >= 45%% loss",
			split.FailureDeflectionMM, intact.FailureDeflectionMM)
	}
	if split.FlexuralStrengthMPa >= intact.FlexuralStrengthMPa {
		t.Error("split flexural strength should drop")
	}
	if split.FlexuralModulusGPa < 0.9*intact.FlexuralModulusGPa {
		t.Error("modulus should barely change")
	}
}

func TestBendTestErrors(t *testing.T) {
	if _, err := BendTest(Specimen{}, DefaultBendSetup(), nil); err == nil {
		t.Error("expected error for invalid specimen")
	}
	if _, err := BendTest(Specimen{Mat: ABS(XY)}, BendSetup{}, nil); err == nil {
		t.Error("expected error for invalid setup")
	}
}
