package mech

import (
	"math"
	"testing"
)

func TestFatigueLifeBasics(t *testing.T) {
	spec := Specimen{Mat: ABS(XY)}
	n, err := FatigueLife(spec, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 1 {
		t.Errorf("life at low amplitude = %v, want >> 1", n)
	}
	// Amplitude at/above ductility fails immediately.
	n, err = FatigueLife(spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0.5 {
		t.Errorf("overload life = %v, want 0.5", n)
	}
	if _, err := FatigueLife(spec, -1); err == nil {
		t.Error("expected error for negative amplitude")
	}
	if _, err := FatigueLife(Specimen{}, 0.005); err == nil {
		t.Error("expected error for invalid specimen")
	}
}

func TestFatigueLifeMonotoneInAmplitude(t *testing.T) {
	spec := Specimen{Mat: ABS(XY)}
	prev := math.Inf(1)
	for _, ea := range []float64{0.002, 0.004, 0.008, 0.016} {
		n, err := FatigueLife(spec, ea)
		if err != nil {
			t.Fatal(err)
		}
		if n >= prev {
			t.Fatalf("life should fall with amplitude: %v at %v", n, ea)
		}
		prev = n
	}
}

// The paper's "inferior service life" claim: split specimens survive far
// fewer cycles than intact ones at the same duty amplitude.
func TestSplitServiceLifeInferior(t *testing.T) {
	const amplitude = 0.004
	intact, err := FatigueLife(Specimen{Mat: ABS(XY)}, amplitude)
	if err != nil {
		t.Fatal(err)
	}
	split, err := FatigueLife(Specimen{
		Mat: ABS(XY), SeamPresent: true, SeamQuality: 0.35, Kt: 2.6,
	}, amplitude)
	if err != nil {
		t.Fatal(err)
	}
	if split >= intact/3 {
		t.Errorf("split life %v vs intact %v: want >= 3x reduction", split, intact)
	}
	// x-z counterfeits are worse still.
	xz, err := FatigueLife(Specimen{
		Mat: ABS(XZ), SeamPresent: true, SeamQuality: 0.11, Kt: 2.6,
	}, amplitude)
	if err != nil {
		t.Fatal(err)
	}
	xzIntact, err := FatigueLife(Specimen{Mat: ABS(XZ)}, amplitude)
	if err != nil {
		t.Fatal(err)
	}
	if xz >= xzIntact/10 {
		t.Errorf("x-z split life %v vs intact %v: want >= 10x reduction", xz, xzIntact)
	}
}
