package mech

import (
	"math"
	"math/rand"
	"testing"

	"obfuscade/internal/parallel"
)

func TestMaterialValidate(t *testing.T) {
	for _, o := range []Orientation{XY, XZ} {
		if err := ABS(o).Validate(); err != nil {
			t.Errorf("ABS(%v): %v", o, err)
		}
		if err := VeroClear(o).Validate(); err != nil {
			t.Errorf("VeroClear(%v): %v", o, err)
		}
	}
	bad := ABS(XY)
	bad.Yield = bad.UTS + 1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for yield above UTS")
	}
	bad = ABS(XY)
	bad.E = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero modulus")
	}
	bad = ABS(XY)
	bad.FailureStrain = 1e-5
	if err := bad.Validate(); err == nil {
		t.Error("expected error for elastic-range failure strain")
	}
}

func TestStressCurveShape(t *testing.T) {
	m := ABS(XY)
	if got := m.Stress(-1); got != 0 {
		t.Errorf("negative strain stress = %v", got)
	}
	// Linear region.
	if got := m.Stress(0.005); !approx(got, 0.005*m.E, 1e-9) {
		t.Errorf("elastic stress = %v", got)
	}
	// Monotone non-decreasing, saturating below UTS.
	prev := 0.0
	for eps := 0.0; eps <= 0.1; eps += 0.001 {
		s := m.Stress(eps)
		if s < prev-1e-9 {
			t.Fatalf("stress not monotone at %g", eps)
		}
		if s > m.UTS+1e-9 {
			t.Fatalf("stress %g exceeds UTS %g", s, m.UTS)
		}
		prev = s
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIntactCalibration(t *testing.T) {
	// Noise-free intact tests must land on the paper's intact rows.
	for _, tc := range []struct {
		o       Orientation
		wantE   float64 // GPa
		wantUTS float64 // MPa
		wantEf  float64
	}{
		{XY, 1.98, 30, 0.029},
		{XZ, 2.05, 32.5, 0.077},
	} {
		p, _, err := Test(Specimen{Mat: ABS(tc.o)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.YoungGPa-tc.wantE)/tc.wantE > 0.02 {
			t.Errorf("%v: E = %v GPa, want ~%v", tc.o, p.YoungGPa, tc.wantE)
		}
		if math.Abs(p.UTSMPa-tc.wantUTS)/tc.wantUTS > 0.03 {
			t.Errorf("%v: UTS = %v, want ~%v", tc.o, p.UTSMPa, tc.wantUTS)
		}
		if math.Abs(p.FailureStrain-tc.wantEf)/tc.wantEf > 0.01 {
			t.Errorf("%v: failure strain = %v, want %v", tc.o, p.FailureStrain, tc.wantEf)
		}
	}
}

// The Table 2 shape: a split specimen loses >= 50% failure strain and
// >= 2x toughness relative to intact, while E and UTS change much less.
func TestSplitKnockdownShape(t *testing.T) {
	// Seam qualities as the printer computes them for coarse STL prints
	// (x-y: healed micro-void seam; x-z: mostly cold seam).
	for _, tc := range []struct {
		name        string
		o           Orientation
		seamQuality float64
	}{
		{"x-y coarse", XY, 0.35},
		{"x-z coarse", XZ, 0.14},
	} {
		intact, _, err := Test(Specimen{Mat: ABS(tc.o)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		split, _, err := Test(Specimen{
			Mat: ABS(tc.o), SeamPresent: true,
			SeamQuality: tc.seamQuality, Kt: 2.6, ModulusKnockdown: 0.03,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if split.FailureStrain > 0.55*intact.FailureStrain {
			t.Errorf("%s: failure strain %v vs intact %v — want >= 50%% loss",
				tc.name, split.FailureStrain, intact.FailureStrain)
		}
		if split.ToughnessKJM3 > intact.ToughnessKJM3/2 {
			t.Errorf("%s: toughness %v vs intact %v — want >= 2x loss",
				tc.name, split.ToughnessKJM3, intact.ToughnessKJM3)
		}
		if split.YoungGPa < 0.9*intact.YoungGPa {
			t.Errorf("%s: modulus should barely change: %v vs %v",
				tc.name, split.YoungGPa, intact.YoungGPa)
		}
		if split.UTSMPa < 0.7*intact.UTSMPa {
			t.Errorf("%s: UTS knockdown too large: %v vs %v",
				tc.name, split.UTSMPa, intact.UTSMPa)
		}
	}
}

// The x-y split specimen fails on the rising part of the curve, so its
// measured UTS drops noticeably (paper: 24 vs 30 MPa); the x-z split
// specimen fails past the plateau, so UTS is barely affected (31.5 vs
// 32.5 MPa).
func TestUTSSignature(t *testing.T) {
	xy, _, err := Test(Specimen{Mat: ABS(XY), SeamPresent: true, SeamQuality: 0.35, Kt: 2.6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if xy.UTSMPa > 28 || xy.UTSMPa < 20 {
		t.Errorf("spline x-y UTS = %v, want in [20, 28] (paper: 24)", xy.UTSMPa)
	}
	xz, _, err := Test(Specimen{Mat: ABS(XZ), SeamPresent: true, SeamQuality: 0.15, Kt: 2.6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if xz.UTSMPa < 29 {
		t.Errorf("spline x-z UTS = %v, want >= 29 (paper: 31.5)", xz.UTSMPa)
	}
}

func TestSeamQualityMonotone(t *testing.T) {
	prev := -1.0
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p, _, err := Test(Specimen{Mat: ABS(XY), SeamPresent: true, SeamQuality: q, Kt: 2.6}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.FailureStrain <= prev {
			t.Fatalf("failure strain not monotone in seam quality at %g", q)
		}
		prev = p.FailureStrain
	}
}

func TestPerfectSeamCapped(t *testing.T) {
	// A perfect seam with no concentrator behaves like intact material.
	p, _, err := Test(Specimen{Mat: ABS(XY), SeamPresent: true, SeamQuality: 1, Kt: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	intact, _, _ := Test(Specimen{Mat: ABS(XY)}, nil)
	if !approx(p.FailureStrain, intact.FailureStrain, 1e-9) {
		t.Errorf("perfect seam strain %v vs intact %v", p.FailureStrain, intact.FailureStrain)
	}
}

func TestSpecimenValidate(t *testing.T) {
	if err := (Specimen{Mat: ABS(XY), SeamPresent: true, SeamQuality: 2, Kt: 2}).Validate(); err == nil {
		t.Error("expected error for seam quality > 1")
	}
	if err := (Specimen{Mat: ABS(XY), SeamPresent: true, SeamQuality: 0.5, Kt: 0.5}).Validate(); err == nil {
		t.Error("expected error for Kt < 1")
	}
	if err := (Specimen{Mat: ABS(XY), ModulusKnockdown: 1.5}).Validate(); err == nil {
		t.Error("expected error for knockdown >= 1")
	}
}

func TestTestGroupStatistics(t *testing.T) {
	g, err := TestGroup("intact x-y", Specimen{Mat: ABS(XY)}, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 5 || len(g.Samples) != 5 {
		t.Fatalf("group size = %d", g.N)
	}
	if g.Young.Std <= 0 || g.FailureStrain.Std <= 0 {
		t.Error("replicates should show spread")
	}
	if math.Abs(g.Young.Mean-1.98) > 0.1 {
		t.Errorf("group mean E = %v", g.Young.Mean)
	}
	// Determinism: same seed, same stats.
	g2, _ := TestGroup("intact x-y", Specimen{Mat: ABS(XY)}, 5, 42)
	if g2.Young != g.Young || g2.Toughness != g.Toughness {
		t.Error("same seed should reproduce identical statistics")
	}
	if _, err := TestGroup("bad", Specimen{Mat: ABS(XY)}, 0, 1); err == nil {
		t.Error("expected error for zero replicates")
	}
}

// Replicate i's noise must depend only on (seed, i): growing the group
// must not change the earlier samples, the property that makes parallel
// replicate execution schedule-independent.
func TestTestGroupScheduleIndependent(t *testing.T) {
	spec := Specimen{Mat: ABS(XY), SeamPresent: true, SeamQuality: 0.35, Kt: 2.6}
	small, err := TestGroup("g", spec, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	large, err := TestGroup("g", spec, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small.Samples {
		if small.Samples[i] != large.Samples[i] {
			t.Errorf("sample %d changed with group size: %+v vs %+v",
				i, small.Samples[i], large.Samples[i])
		}
	}
}

// Parallel replicate execution must be field-for-field identical to the
// serial baseline (worker pool forced to 1).
func TestTestGroupParallelMatchesSerial(t *testing.T) {
	defer parallel.SetDefault(0)
	spec := Specimen{Mat: ABS(XZ), SeamPresent: true, SeamQuality: 0.14, Kt: 2.6}
	parallel.SetDefault(1)
	serial, err := TestGroup("g", spec, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetDefault(8)
	par, err := TestGroup("g", spec, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Young != par.Young || serial.UTS != par.UTS ||
		serial.FailureStrain != par.FailureStrain || serial.Toughness != par.Toughness {
		t.Errorf("group stats differ: serial %+v vs parallel %+v", serial, par)
	}
	for i := range serial.Samples {
		if serial.Samples[i] != par.Samples[i] {
			t.Errorf("sample %d differs: %+v vs %+v", i, serial.Samples[i], par.Samples[i])
		}
	}
}

func TestCurveConsistency(t *testing.T) {
	_, cur, err := Test(Specimen{Mat: ABS(XY)}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Strain) != len(cur.Stress) || len(cur.Strain) == 0 {
		t.Fatal("malformed curve")
	}
	if cur.Strain[0] != 0 || cur.Stress[0] != 0 {
		t.Error("curve should start at origin")
	}
	for i := 1; i < len(cur.Strain); i++ {
		if cur.Strain[i] <= cur.Strain[i-1] {
			t.Fatal("strain not increasing")
		}
	}
}

func TestStatString(t *testing.T) {
	s := Stat{Mean: 1.891, Std: 0.042}
	if got := s.String(); got != "1.89±0.042" {
		t.Errorf("Stat.String = %q", got)
	}
}

func TestOrientationString(t *testing.T) {
	if XY.String() != "x-y" || XZ.String() != "x-z" {
		t.Error("Orientation.String misbehaves")
	}
}
