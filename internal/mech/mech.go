// Package mech simulates the destructive testing stage of the AM process
// chain: uniaxial tensile tests on printed specimens, producing the
// Young's modulus, ultimate tensile strength, failure strain and
// toughness reported in the paper's Table 2.
//
// Modelling approach (documented in DESIGN.md §2): the *intact* rows of
// Table 2 calibrate the orientation-dependent base material model (FDM
// parts are strongly anisotropic); the *split* rows are then predicted
// from printed seam physics: the seam's bond quality (package printer)
// and the stress concentration at the split tip (package fea) reduce the
// strain at which fracture initiates (paper Fig. 9). Stress follows a
// saturating elastoplastic law, so specimens failing early also exhibit
// reduced measured UTS — exactly the paper's Spline x-y signature.
package mech

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"obfuscade/internal/obs"
	"obfuscade/internal/parallel"
	"obfuscade/internal/trace"
)

// Destructive-testing metrics: group latency plus a deterministic
// replicate total (counted once per successful group).
var (
	stTestGroup = obs.Stage("mech.testgroup")
	mReplicates = obs.Default().Counter("mech.replicates")
)

// Orientation is the print orientation of a specimen (paper Fig. 6).
type Orientation int

const (
	// XY is the flat orientation: the specimen lies on the build plate.
	XY Orientation = iota
	// XZ is the on-edge orientation: the width stands vertical.
	XZ
)

// String implements fmt.Stringer.
func (o Orientation) String() string {
	if o == XZ {
		return "x-z"
	}
	return "x-y"
}

// Material is an elastoplastic material law with saturating hardening:
//
//	sigma(eps) = E*eps                                  for eps <= yield/E
//	             Y + (UTS-Y)*(1 - exp(-(eps-epsY)/tau)) beyond
//
// Values are in MPa and mm/mm.
type Material struct {
	Name string
	// E is Young's modulus in MPa.
	E float64
	// Yield is the proportional limit in MPa.
	Yield float64
	// UTS is the saturated flow stress in MPa.
	UTS float64
	// Tau is the hardening strain constant.
	Tau float64
	// FailureStrain is the intrinsic ductility of a defect-free print in
	// this orientation.
	FailureStrain float64
}

// ABS returns the FDM ABS material law for the given print orientation,
// calibrated against the intact rows of the paper's Table 2
// (E 1.98/2.05 GPa, UTS 30/32.5 MPa, failure strain 0.029/0.077 for
// x-y/x-z respectively).
func ABS(o Orientation) Material {
	if o == XZ {
		return Material{
			Name: "ABS", E: 2050, Yield: 21, UTS: 32.6, Tau: 0.005,
			FailureStrain: 0.077,
		}
	}
	return Material{
		Name: "ABS", E: 1980, Yield: 20, UTS: 30.1, Tau: 0.005,
		FailureStrain: 0.029,
	}
}

// VeroClear returns the PolyJet VeroClear photopolymer law (datasheet
// values; PolyJet parts are nearly isotropic, so orientations differ only
// mildly).
func VeroClear(o Orientation) Material {
	m := Material{
		Name: "VeroClear", E: 2700, Yield: 35, UTS: 58, Tau: 0.006,
		FailureStrain: 0.025,
	}
	if o == XZ {
		m.FailureStrain = 0.035
		m.UTS = 60
	}
	return m
}

// Validate reports whether the law is physically sensible.
func (m Material) Validate() error {
	switch {
	case m.E <= 0 || m.Yield <= 0 || m.UTS <= 0 || m.Tau <= 0:
		return fmt.Errorf("mech: material %q parameters must be positive", m.Name)
	case m.Yield >= m.UTS:
		return fmt.Errorf("mech: material %q yield %g must be below UTS %g", m.Name, m.Yield, m.UTS)
	case m.FailureStrain <= m.Yield/m.E:
		return fmt.Errorf("mech: material %q failure strain %g within elastic range", m.Name, m.FailureStrain)
	}
	return nil
}

// Stress evaluates the stress at a given strain (no damage).
func (m Material) Stress(eps float64) float64 {
	if eps <= 0 {
		return 0
	}
	epsY := m.Yield / m.E
	if eps <= epsY {
		return m.E * eps
	}
	return m.Yield + (m.UTS-m.Yield)*(1-math.Exp(-(eps-epsY)/m.Tau))
}

// Specimen describes one printed tensile specimen with its defect state.
type Specimen struct {
	// Mat is the calibrated base material for the print orientation.
	Mat Material
	// SeamPresent marks a specimen containing a split-feature seam.
	SeamPresent bool
	// SeamQuality is the effective bond quality across the seam in
	// [0, 1] (printer.SeamRecord.BondQuality). Ignored when
	// SeamPresent is false.
	SeamQuality float64
	// Kt is the stress concentration factor at the seam tip (package
	// fea); 1 when no concentrator exists.
	Kt float64
	// ModulusKnockdown is the fractional stiffness loss from seam
	// compliance and micro-voids (small, e.g. 0.02-0.05).
	ModulusKnockdown float64
}

// Validate reports whether the specimen is usable.
func (s Specimen) Validate() error {
	if err := s.Mat.Validate(); err != nil {
		return err
	}
	if s.SeamPresent {
		if s.SeamQuality < 0 || s.SeamQuality > 1 {
			return fmt.Errorf("mech: seam quality %g out of [0,1]", s.SeamQuality)
		}
		if s.Kt < 1 {
			return fmt.Errorf("mech: Kt %g must be >= 1", s.Kt)
		}
	}
	if s.ModulusKnockdown < 0 || s.ModulusKnockdown >= 1 {
		return fmt.Errorf("mech: modulus knockdown %g out of [0,1)", s.ModulusKnockdown)
	}
	return nil
}

// failureStrain returns the nominal strain at which fracture initiates:
// intrinsic ductility, reduced by the seam. The seam's cohesive energy
// scales with bond quality q; the local strain at the tip is amplified by
// an *effective* concentration factor that itself fades as the seam heals
// (a fully bonded seam concentrates nothing):
//
//	Kt_eff = 1 + (Kt - 1)(1 - q)
//	g      = sqrt(q / Kt_eff)           (energy-based initiation)
//	eps_f  = eps_intrinsic * min(1, g)
func (s Specimen) failureStrain() float64 {
	ef := s.Mat.FailureStrain
	if !s.SeamPresent {
		return ef
	}
	kt := s.Kt
	if kt < 1 {
		kt = 1
	}
	ktEff := 1 + (kt-1)*(1-s.SeamQuality)
	g := math.Sqrt(s.SeamQuality / ktEff)
	if g > 1 {
		g = 1
	}
	return ef * g
}

// Properties are the measured outcomes of one tensile test, in the units
// of the paper's Table 2.
type Properties struct {
	// YoungGPa is the measured Young's modulus in GPa.
	YoungGPa float64
	// UTSMPa is the measured peak stress in MPa.
	UTSMPa float64
	// FailureStrain is the strain at fracture, mm/mm.
	FailureStrain float64
	// ToughnessKJM3 is the absorbed energy density in kJ/m^3.
	ToughnessKJM3 float64
}

// Curve is a sampled stress-strain record.
type Curve struct {
	Strain []float64
	Stress []float64
}

// Test runs one tensile test with multiplicative process noise drawn from
// rng (pass nil for a deterministic noise-free test).
func Test(s Specimen, rng *rand.Rand) (Properties, Curve, error) {
	if err := s.Validate(); err != nil {
		return Properties{}, Curve{}, err
	}
	noise := func(sigma float64) float64 {
		if rng == nil {
			return 1
		}
		return 1 + rng.NormFloat64()*sigma
	}
	eMeas := s.Mat.E * (1 - s.ModulusKnockdown) * noise(0.02)
	efail := s.failureStrain() * noise(0.05)
	if efail <= 0 {
		efail = 1e-4
	}
	scale := eMeas / s.Mat.E

	const steps = 400
	cur := Curve{
		Strain: make([]float64, steps+1),
		Stress: make([]float64, steps+1),
	}
	var peak, tough float64
	for i := 0; i <= steps; i++ {
		eps := efail * float64(i) / steps
		sig := s.Mat.Stress(eps) * scale
		cur.Strain[i] = eps
		cur.Stress[i] = sig
		if sig > peak {
			peak = sig
		}
		if i > 0 {
			tough += (cur.Stress[i] + cur.Stress[i-1]) / 2 * (cur.Strain[i] - cur.Strain[i-1])
		}
	}
	props := Properties{
		YoungGPa:      eMeas / 1000,
		UTSMPa:        peak * noise(0.01),
		FailureStrain: efail,
		ToughnessKJM3: tough * 1000,
	}
	return props, cur, nil
}

// BendSetup is a three-point flexural test fixture (ASTM D790 style).
type BendSetup struct {
	// Span is the support span L, mm.
	Span float64
	// Width and Depth are the specimen cross-section b and d, mm.
	Width, Depth float64
}

// DefaultBendSetup returns a 16:1 span-to-depth D790 fixture for the
// paper's 3.2 mm thick coupons.
func DefaultBendSetup() BendSetup {
	return BendSetup{Span: 51.2, Width: 12.7, Depth: 3.2}
}

// Validate reports whether the fixture is usable.
func (b BendSetup) Validate() error {
	if b.Span <= 0 || b.Width <= 0 || b.Depth <= 0 {
		return fmt.Errorf("mech: bend setup dimensions must be positive: %+v", b)
	}
	if b.Span < 4*b.Depth {
		return fmt.Errorf("mech: span %g too short for depth %g (shear-dominated)", b.Span, b.Depth)
	}
	return nil
}

// BendProperties are the measured outcomes of a flexural test.
type BendProperties struct {
	// FlexuralModulusGPa is the chord modulus from the initial slope.
	FlexuralModulusGPa float64
	// FlexuralStrengthMPa is the outer-fibre stress at failure
	// (including the rectangular-section plastic shape factor).
	FlexuralStrengthMPa float64
	// FailureDeflectionMM is the mid-span deflection at fracture.
	FailureDeflectionMM float64
}

// BendTest runs a three-point flexural test. The outer fibre of the
// specimen experiences the highest strain, so the split feature's
// ductility knockdown maps directly onto the failure deflection:
// eps_outer = 6 D d / L^2.
func BendTest(s Specimen, setup BendSetup, rng *rand.Rand) (BendProperties, error) {
	if err := s.Validate(); err != nil {
		return BendProperties{}, err
	}
	if err := setup.Validate(); err != nil {
		return BendProperties{}, err
	}
	noise := func(sigma float64) float64 {
		if rng == nil {
			return 1
		}
		return 1 + rng.NormFloat64()*sigma
	}
	eMeas := s.Mat.E * (1 - s.ModulusKnockdown) * noise(0.02)
	efail := s.failureStrain() * noise(0.05)
	if efail <= 0 {
		efail = 1e-4
	}
	// Plastic section shape factor for a rectangular beam.
	const shapeFactor = 1.5
	strength := shapeFactor * s.Mat.Stress(efail) * (eMeas / s.Mat.E) * noise(0.01)
	deflection := efail * setup.Span * setup.Span / (6 * setup.Depth)
	return BendProperties{
		FlexuralModulusGPa:  eMeas / 1000,
		FlexuralStrengthMPa: strength,
		FailureDeflectionMM: deflection,
	}, nil
}

// FatigueLife estimates the cycles to failure under a cyclic strain
// amplitude using a Coffin-Manson strain-life law,
//
//	eps_a = eps_f_eff * (2N)^(-b),  b = 0.6 (typical for thermoplastics)
//
// where eps_f_eff is the specimen's (seam-reduced) fracture ductility.
// This quantifies the paper's "inferior service life" claim: the split
// feature's ductility knockdown compounds under cyclic loading.
func FatigueLife(s Specimen, strainAmplitude float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if strainAmplitude <= 0 {
		return 0, fmt.Errorf("mech: strain amplitude must be positive, got %g", strainAmplitude)
	}
	const b = 0.6
	ef := s.failureStrain()
	if strainAmplitude >= ef {
		return 0.5, nil // fails on the first excursion
	}
	return 0.5 * math.Pow(ef/strainAmplitude, 1/b), nil
}

// Stat is a mean with standard deviation.
type Stat struct {
	Mean, Std float64
}

// String formats the stat like the paper's Table 2 cells.
func (s Stat) String() string { return fmt.Sprintf("%.3g±%.2g", s.Mean, s.Std) }

// GroupResult aggregates replicate tests of one specimen group.
type GroupResult struct {
	Name                                 string
	N                                    int
	Young, UTS, FailureStrain, Toughness Stat
	Samples                              []Properties
}

// TestGroup runs n replicate tensile tests with process noise seeded by
// seed and returns group statistics — one row of the paper's Table 2.
// Replicate i draws its noise from an independent RNG stream seeded by
// splitmix(seed, i), so sample i depends only on (seed, i) — never on the
// group size, execution order, or which worker ran it — and replicates
// run on the shared worker pool with output identical to a serial run.
func TestGroup(name string, s Specimen, n int, seed int64) (GroupResult, error) {
	return TestGroupCtx(context.Background(), name, s, n, seed)
}

// TestGroupCtx is TestGroup with trace propagation: the stage span
// parents to the span carried by ctx and a batch instant records the
// deterministic replicate count.
func TestGroupCtx(ctx context.Context, name string, s Specimen, n int, seed int64) (res GroupResult, err error) {
	span := stTestGroup.Start()
	ctx, tsp := trace.StartSpan(ctx, "stage", "mech.testgroup", trace.A("group", name))
	defer func() {
		tsp.End()
		span.EndErr(err)
		if err == nil {
			mReplicates.Add(int64(n))
		}
	}()
	if n < 1 {
		return GroupResult{}, fmt.Errorf("mech: need at least 1 replicate")
	}
	if err := s.Validate(); err != nil {
		return GroupResult{}, err
	}
	trace.Instant(ctx, "batch", "mech.replicates", trace.A("count", fmt.Sprint(n)))
	g := GroupResult{Name: name, N: n, Samples: make([]Properties, n)}
	err = parallel.ForEach(ctx, n, 0, func(i int) error {
		rng := rand.New(rand.NewSource(parallel.SplitMix(seed, i)))
		p, _, err := Test(s, rng)
		if err != nil {
			return err
		}
		g.Samples[i] = p
		return nil
	})
	if err != nil {
		return GroupResult{}, err
	}
	g.Young = statOf(g.Samples, func(p Properties) float64 { return p.YoungGPa })
	g.UTS = statOf(g.Samples, func(p Properties) float64 { return p.UTSMPa })
	g.FailureStrain = statOf(g.Samples, func(p Properties) float64 { return p.FailureStrain })
	g.Toughness = statOf(g.Samples, func(p Properties) float64 { return p.ToughnessKJM3 })
	return g, nil
}

func statOf(ps []Properties, f func(Properties) float64) Stat {
	var sum float64
	for _, p := range ps {
		sum += f(p)
	}
	mean := sum / float64(len(ps))
	var ss float64
	for _, p := range ps {
		d := f(p) - mean
		ss += d * d
	}
	std := 0.0
	if len(ps) > 1 {
		std = math.Sqrt(ss / float64(len(ps)-1))
	}
	return Stat{Mean: mean, Std: std}
}
