package tessellate

import (
	"math"
	"sync"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
)

func testRevolve() *brep.Revolve {
	return &brep.Revolve{
		X0: 0, X1: 12,
		Axis:   geom.V2(0.5, -0.25),
		Breaks: []float64{4, 8},
		Radius: func(x float64) float64 {
			switch {
			case x < 4:
				return 2
			case x < 8:
				return 1.2 + 0.3*math.Sin(x)
			default:
				return 2.5
			}
		},
	}
}

// tessellateRevolve's ring-trig fast path must be bit-identical to the
// retained per-point reference at every resolution.
func TestRevolveMatchesReference(t *testing.T) {
	rev := testRevolve()
	for _, res := range Presets() {
		got, err := tessellateRevolve(rev, "r", "r", res)
		if err != nil {
			t.Fatalf("%s: %v", res.Name, err)
		}
		want, err := tessellateRevolveReference(rev, "r", "r", res)
		if err != nil {
			t.Fatalf("%s reference: %v", res.Name, err)
		}
		if len(got.Tris) != len(want.Tris) {
			t.Fatalf("%s: %d triangles, reference %d", res.Name, len(got.Tris), len(want.Tris))
		}
		if cap(got.Tris) != len(got.Tris) {
			t.Errorf("%s: cap %d != len %d (inexact prealloc)", res.Name, cap(got.Tris), len(got.Tris))
		}
		for i := range got.Tris {
			if got.Tris[i] != want.Tris[i] {
				t.Fatalf("%s: triangle %d differs:\n got %+v\nwant %+v",
					res.Name, i, got.Tris[i], want.Tris[i])
			}
		}
	}
}

// The pooled ring trig must be safe under concurrent revolve meshing at
// mixed resolutions (run with -race in tier 2).
func TestRevolveConcurrent(t *testing.T) {
	rev := testRevolve()
	presets := Presets()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				res := presets[(w+iter)%len(presets)]
				got, err := tessellateRevolve(rev, "r", "r", res)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				want, err := tessellateRevolveReference(rev, "r", "r", res)
				if err != nil {
					t.Errorf("worker %d reference: %v", w, err)
					return
				}
				for i := range got.Tris {
					if got.Tris[i] != want.Tris[i] {
						t.Errorf("worker %d %s: triangle %d differs", w, res.Name, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
