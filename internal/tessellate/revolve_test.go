package tessellate

import (
	"math"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

func TestTessellateCylinder(t *testing.T) {
	rev := &brep.Revolve{
		X0: 0, X1: 20, Tag: "cylinder",
		Radius: func(x float64) float64 { return 5 },
	}
	p := &brep.Part{Name: "cyl", Bodies: []*brep.Body{{
		Name: "cyl", Kind: brep.Solid, Shape: rev,
	}}}
	m, err := Tessellate(p, Fine)
	if err != nil {
		t.Fatal(err)
	}
	rep := mesh.IndexShell(&m.Shells[0], 1e-9).Analyze()
	if !rep.Watertight() {
		t.Fatalf("cylinder not watertight: %+v", rep)
	}
	exact := math.Pi * 25 * 20
	vol := m.Volume()
	if vol <= 0 {
		t.Fatalf("cylinder volume %v: shell inside-out", vol)
	}
	if math.Abs(vol-exact)/exact > 0.02 {
		t.Errorf("cylinder volume = %v, want ~%v", vol, exact)
	}
	if vol >= exact {
		t.Errorf("inscribed mesh volume %v should be below exact %v", vol, exact)
	}
}

func TestTessellateSteppedShaft(t *testing.T) {
	p, err := brep.NewShaft("shaft", 10, 6, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Tessellate(p, Fine)
	if err != nil {
		t.Fatal(err)
	}
	rep := mesh.IndexShell(&m.Shells[0], 1e-9).Analyze()
	if !rep.Watertight() {
		t.Fatalf("shaft not watertight: %+v", rep)
	}
	exact := math.Pi*36*10 + math.Pi*9*15
	vol := m.Volume()
	if math.Abs(vol-exact)/exact > 0.02 {
		t.Errorf("shaft volume = %v, want ~%v", vol, exact)
	}
	// The step should appear as a sharp radius change at x=10.
	b := m.Bounds()
	if math.Abs(b.Max.Y-6) > 0.05 || math.Abs(b.Min.Y+6) > 0.05 {
		t.Errorf("shaft bounds %v, want +-6 in y", b)
	}
}

func TestTessellateTaperedNozzle(t *testing.T) {
	rev := &brep.Revolve{
		X0: 0, X1: 30, Tag: "nozzle",
		Radius: func(x float64) float64 { return 8 - 0.2*x + 0.004*x*x },
	}
	if err := rev.Validate(); err != nil {
		t.Fatal(err)
	}
	p := &brep.Part{Name: "nozzle", Bodies: []*brep.Body{{
		Name: "nozzle", Kind: brep.Solid, Shape: rev,
	}}}
	coarse, err := Tessellate(p, Coarse)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Tessellate(p, Custom)
	if err != nil {
		t.Fatal(err)
	}
	if fine.TriangleCount() <= coarse.TriangleCount() {
		t.Errorf("resolution should control triangles: %d vs %d",
			fine.TriangleCount(), coarse.TriangleCount())
	}
	// Both resolutions approximate the disc-method volume.
	exact := rev.Volume()
	if math.Abs(fine.Volume()-exact)/exact > 0.01 {
		t.Errorf("nozzle volume = %v, want ~%v", fine.Volume(), exact)
	}
	rep := mesh.IndexShell(&fine.Shells[0], 1e-9).Analyze()
	if !rep.Watertight() {
		t.Errorf("nozzle not watertight: %+v", rep)
	}
}

func TestShaftWithEmbeddedSphere(t *testing.T) {
	// The §3.2 feature works on axisymmetric hosts too.
	p, err := brep.NewShaft("shaft", 10, 6, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := brep.EmbedSphere(p, "shaft", geom.V3(5, 0, 0), 2, brep.EmbedOpts{}); err != nil {
		t.Fatal(err)
	}
	m, err := Tessellate(p, Fine)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shells) != 2 {
		t.Fatalf("shells = %d, want 2", len(m.Shells))
	}
}

func TestRevolveValidation(t *testing.T) {
	bad := &brep.Revolve{X0: 5, X1: 5, Radius: func(float64) float64 { return 1 }}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for empty span")
	}
	neg := &brep.Revolve{X0: 0, X1: 10, Radius: func(x float64) float64 { return x - 5 }}
	if err := neg.Validate(); err == nil {
		t.Error("expected error for non-positive radius")
	}
	badBreak := &brep.Revolve{
		X0: 0, X1: 10,
		Radius: func(float64) float64 { return 1 },
		Breaks: []float64{12},
	}
	if err := badBreak.Validate(); err == nil {
		t.Error("expected error for out-of-range break")
	}
	if _, err := brep.NewShaft("s", 10, 6, 5, 3); err == nil {
		t.Error("expected error for l <= l1")
	}
}
