// Package tessellate converts brep parts into triangle meshes, emulating a
// CAD system's STL export stage.
//
// Export quality is controlled by a Resolution (paper Fig. 5): the maximum
// chordal Deviation and the maximum facet Angle. The presets Coarse, Fine
// and Custom correspond to the three export settings investigated in the
// paper's §3.1.
//
// Crucially, each body of a multi-body part is tessellated independently:
// a boundary curve shared between two bodies (the spline split) is sampled
// with each body's own phase, producing mismatched vertices along the
// split — the tessellation-induced gaps of paper Fig. 4.
package tessellate

import (
	"fmt"
	"math"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/obs"
	"obfuscade/internal/spline"
)

// stTessellate times full part tessellations. Memoized pipelines call
// Tessellate only on memo misses, so tessellate.mesh.seconds is the true
// cost of the stage after sharing — exactly the split paperbench reports.
var stTessellate = obs.Stage("tessellate.mesh")

// Resolution is an STL export quality setting (paper Fig. 5).
type Resolution struct {
	// Name labels the preset.
	Name string
	// Deviation is the maximum chordal deviation in mm.
	Deviation float64
	// AngleDeg is the maximum angle between adjacent facets in degrees.
	AngleDeg float64
}

// The three export settings investigated in the paper (§3.1, Fig. 5):
// Coarse and Fine are CAD presets; Custom manually dials Angle and
// Deviation to the smallest practical values.
var (
	Coarse = Resolution{Name: "coarse", Deviation: 0.08, AngleDeg: 30}
	Fine   = Resolution{Name: "fine", Deviation: 0.02, AngleDeg: 10}
	Custom = Resolution{Name: "custom", Deviation: 0.002, AngleDeg: 2}
)

// Presets returns the standard resolutions in coarse-to-fine order.
func Presets() []Resolution { return []Resolution{Coarse, Fine, Custom} }

// ByName returns the preset with the given name.
func ByName(name string) (Resolution, error) {
	for _, r := range Presets() {
		if r.Name == name {
			return r, nil
		}
	}
	return Resolution{}, fmt.Errorf("tessellate: unknown resolution %q", name)
}

// Opts converts the resolution to flattening options with the given
// sampling phase.
func (r Resolution) Opts(phase float64) spline.FlattenOpts {
	return spline.FlattenOpts{
		Deviation: r.Deviation,
		Angle:     r.AngleDeg * math.Pi / 180,
		Phase:     phase,
	}
}

// Validate reports whether the resolution is usable.
func (r Resolution) Validate() error {
	if r.Deviation <= 0 || r.AngleDeg <= 0 {
		return fmt.Errorf("tessellate: resolution %q must have positive deviation and angle", r.Name)
	}
	return nil
}

// Tessellate converts every body of the part into mesh shells. Solid
// bodies produce outward shells; their cavities produce inward shells;
// surface bodies produce open shells oriented concave-out (normals toward
// the enclosed space), matching how the §3.2 surface sphere exports.
func Tessellate(p *brep.Part, res Resolution) (_ *mesh.Mesh, err error) {
	sp := stTessellate.Start()
	defer func() { sp.EndErr(err) }()
	if err := res.Validate(); err != nil {
		return nil, err
	}
	m := &mesh.Mesh{}
	for _, body := range p.Bodies {
		shells, err := tessellateBody(body, res)
		if err != nil {
			return nil, fmt.Errorf("tessellate: body %q: %w", body.Name, err)
		}
		m.Shells = append(m.Shells, shells...)
	}
	if m.TriangleCount() == 0 {
		return nil, fmt.Errorf("tessellate: part %q produced no triangles", p.Name)
	}
	return m, nil
}

func tessellateBody(b *brep.Body, res Resolution) ([]mesh.Shell, error) {
	var shells []mesh.Shell
	main, err := tessellateShape(b.Shape, b.Name, b.Name, res, b.Phase)
	if err != nil {
		return nil, err
	}
	if b.Kind == brep.Surface {
		// Surface bodies bound no material. Export them with reversed
		// (concave-out) orientation; the slicer then reads the region
		// they enclose as void, reproducing Table 3's surface-sphere
		// rows.
		main.FlipOrientation()
		main.Orient = mesh.OpenSurface
	}
	shells = append(shells, main)
	for i, c := range b.Cavities {
		cav, err := tessellateShape(c, fmt.Sprintf("%s-cavity-%d", b.Name, i), b.Name, res, b.Phase)
		if err != nil {
			return nil, err
		}
		cav.FlipOrientation()
		cav.Orient = mesh.Inward
		shells = append(shells, cav)
	}
	return shells, nil
}

func tessellateShape(s brep.Shape, name, bodyName string, res Resolution, phase float64) (mesh.Shell, error) {
	switch t := s.(type) {
	case *brep.Prism:
		return tessellatePrism(t, name, bodyName, res, phase)
	case *brep.Sphere:
		return tessellateSphere(t, name, bodyName, res), nil
	case *brep.Revolve:
		return tessellateRevolve(t, name, bodyName, res)
	default:
		return mesh.Shell{}, fmt.Errorf("unsupported shape %T", s)
	}
}

func tessellatePrism(p *brep.Prism, name, bodyName string, res Resolution, phase float64) (mesh.Shell, error) {
	poly, err := p.Profile(res.Opts(0), phase)
	if err != nil {
		return mesh.Shell{}, err
	}
	tris, err := geom.Triangulate(poly)
	if err != nil {
		return mesh.Shell{}, fmt.Errorf("triangulate profile: %w", err)
	}
	// 2 cap triangles per profile triangle plus at most 2 wall triangles
	// per profile edge, reserved up front so emission never reallocates.
	shell := mesh.Shell{Name: name, Body: bodyName, Orient: mesh.Outward,
		Tris: make([]geom.Triangle, 0, 2*len(tris)+2*len(poly))}
	at := func(v geom.Vec2, z float64) geom.Vec3 { return geom.V3(v.X, v.Y, z) }
	// Caps. The profile is CCW, so the top cap keeps the winding (+Z
	// normal) and the bottom cap reverses it (-Z normal).
	for _, tr := range tris {
		a, b, c := poly[tr[0]], poly[tr[1]], poly[tr[2]]
		shell.Tris = append(shell.Tris,
			geom.Triangle{A: at(a, p.Z1), B: at(b, p.Z1), C: at(c, p.Z1)},
			geom.Triangle{A: at(a, p.Z0), B: at(c, p.Z0), C: at(b, p.Z0)},
		)
	}
	// Side walls.
	n := len(poly)
	for i := 0; i < n; i++ {
		v0 := poly[i]
		v1 := poly[(i+1)%n]
		if v0.Eq(v1, 1e-12) {
			continue
		}
		a := at(v0, p.Z0)
		b := at(v1, p.Z0)
		c := at(v1, p.Z1)
		d := at(v0, p.Z1)
		shell.Tris = append(shell.Tris,
			geom.Triangle{A: a, B: b, C: c},
			geom.Triangle{A: a, B: c, C: d},
		)
	}
	return shell, nil
}

// SphereSegments returns the latitude/longitude subdivision a resolution
// implies for a sphere of radius r, derived from the chordal-deviation and
// facet-angle limits.
func SphereSegments(r float64, res Resolution) (lat, lon int) {
	// Chordal sagitta for an arc of angle a on radius r is r(1-cos(a/2)).
	maxByDev := 2 * math.Acos(geom.Clamp(1-res.Deviation/r, -1, 1))
	maxByAngle := res.AngleDeg * math.Pi / 180
	step := math.Min(maxByDev, maxByAngle)
	if step <= 0 || math.IsNaN(step) {
		step = math.Pi / 8
	}
	lat = int(math.Ceil(math.Pi / step))
	lon = int(math.Ceil(2 * math.Pi / step))
	if lat < 3 {
		lat = 3
	}
	if lon < 6 {
		lon = 6
	}
	return lat, lon
}

func tessellateSphere(s *brep.Sphere, name, bodyName string, res Resolution) mesh.Shell {
	lat, lon := SphereSegments(s.R, res)
	return mesh.SphereShell(name, bodyName, s.Center, s.R, lat, lon)
}

// SplitMismatch locates a spline boundary shared by exactly two prismatic
// bodies of the part and returns the maximum lateral mismatch between the
// two bodies' tessellations of it at the given resolution — the magnitude
// of the Fig. 4 gaps. ok is false when the part has no shared split
// boundary.
func SplitMismatch(p *brep.Part, res Resolution) (mismatch float64, ok bool, err error) {
	type user struct {
		body *brep.Body
	}
	uses := make(map[*spline.Spline][]user)
	for _, b := range p.Bodies {
		prism, isPrism := b.Shape.(*brep.Prism)
		if !isPrism {
			continue
		}
		for _, bd := range []brep.Boundary{prism.Top, prism.Bottom} {
			if sb, isSpline := bd.(*brep.SplineBoundary); isSpline {
				uses[sb.S] = append(uses[sb.S], user{body: b})
			}
		}
	}
	for s, us := range uses {
		if len(us) != 2 {
			continue
		}
		a, err := s.Flatten(res.Opts(us[0].body.Phase))
		if err != nil {
			return 0, false, err
		}
		b, err := s.Flatten(res.Opts(us[1].body.Phase))
		if err != nil {
			return 0, false, err
		}
		m := spline.MaxMismatch(a, b)
		if m2 := spline.MaxMismatch(b, a); m2 > m {
			m = m2
		}
		return m, true, nil
	}
	return 0, false, nil
}
