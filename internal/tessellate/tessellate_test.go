package tessellate

import (
	"math"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/stl"
)

func barPart(t *testing.T) *brep.Part {
	t.Helper()
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func splitBarPart(t *testing.T) *brep.Part {
	t.Helper()
	p := barPart(t)
	s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := brep.SplitBySpline(p, "bar", s); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("presets = %d", len(ps))
	}
	// Monotone coarse-to-fine.
	for i := 0; i+1 < len(ps); i++ {
		if ps[i].Deviation <= ps[i+1].Deviation {
			t.Errorf("deviation not decreasing: %v", ps)
		}
	}
	if _, err := ByName("fine"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("expected error for unknown preset")
	}
	if err := (Resolution{Name: "bad"}).Validate(); err == nil {
		t.Error("expected validation error")
	}
}

func TestTessellateBarWatertight(t *testing.T) {
	m, err := Tessellate(barPart(t), Fine)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shells) != 1 {
		t.Fatalf("shells = %d, want 1", len(m.Shells))
	}
	rep := mesh.IndexShell(&m.Shells[0], 1e-7).Analyze()
	if !rep.Watertight() {
		t.Errorf("bar shell not watertight: %+v", rep)
	}
	// Mesh volume approximates CAD volume.
	cad := barPart(t).Volume()
	if math.Abs(m.Volume()-cad)/cad > 0.01 {
		t.Errorf("mesh volume %v vs CAD %v", m.Volume(), cad)
	}
}

func TestResolutionControlsTriangleCount(t *testing.T) {
	var prev int = 1 << 30
	counts := map[string]int{}
	for _, res := range []Resolution{Custom, Fine, Coarse} {
		m, err := Tessellate(barPart(t), res)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Name] = m.TriangleCount()
		if m.TriangleCount() >= prev {
			t.Errorf("triangle count should decrease with coarser setting: %v", counts)
		}
		prev = m.TriangleCount()
	}
	// Finer resolution means larger STL file (paper §3.1: "finer
	// resolutions use a greater number of triangles ... larger file size").
	if stl.BinarySize(counts["custom"]) <= stl.BinarySize(counts["coarse"]) {
		t.Errorf("custom STL should be larger: %v", counts)
	}
}

func TestTessellateSplitBar(t *testing.T) {
	m, err := Tessellate(splitBarPart(t), Coarse)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shells) != 2 {
		t.Fatalf("shells = %d, want 2", len(m.Shells))
	}
	for i := range m.Shells {
		rep := mesh.IndexShell(&m.Shells[i], 1e-7).Analyze()
		if !rep.Watertight() {
			t.Errorf("shell %s not watertight: %+v", m.Shells[i].Name, rep)
		}
	}
	// Split bodies' volumes sum to the intact volume.
	intact, _ := Tessellate(barPart(t), Coarse)
	sum := m.Volume()
	if math.Abs(sum-intact.Volume())/intact.Volume() > 0.02 {
		t.Errorf("split mesh volume %v vs intact %v", sum, intact.Volume())
	}
}

func TestSplitMismatchScalesWithResolution(t *testing.T) {
	p := splitBarPart(t)
	var prev = math.Inf(1)
	for _, res := range Presets() { // coarse -> fine
		mm, ok, err := SplitMismatch(p, res)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("split boundary not found")
		}
		if mm <= 0 {
			t.Errorf("%s: mismatch should be positive", res.Name)
		}
		if mm > 2.5*res.Deviation {
			t.Errorf("%s: mismatch %g exceeds 2.5x deviation %g", res.Name, mm, res.Deviation)
		}
		if mm >= prev {
			t.Errorf("%s: mismatch %g did not shrink from %g", res.Name, mm, prev)
		}
		prev = mm
	}
}

func TestSplitMismatchIntactBar(t *testing.T) {
	_, ok, err := SplitMismatch(barPart(t), Fine)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("intact bar should have no split boundary")
	}
}

func TestTessellateSphereVariants(t *testing.T) {
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	const r = 3.175

	build := func(opts brep.EmbedOpts) *mesh.Mesh {
		p, err := brep.NewRectPrism("prism", size)
		if err != nil {
			t.Fatal(err)
		}
		if err := brep.EmbedSphere(p, "prism", c, r, opts); err != nil {
			t.Fatal(err)
		}
		m, err := Tessellate(p, Fine)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	solid := build(brep.EmbedOpts{})
	surface := build(brep.EmbedOpts{SurfaceBody: true})
	solidRem := build(brep.EmbedOpts{MaterialRemoval: true})
	surfaceRem := build(brep.EmbedOpts{MaterialRemoval: true, SurfaceBody: true})

	// §3.2.1: solid and surface sphere STL sizes identical.
	if solid.TriangleCount() != surface.TriangleCount() {
		t.Errorf("solid (%d) vs surface (%d) triangle counts should match",
			solid.TriangleCount(), surface.TriangleCount())
	}
	// §3.2.2: removal variants identical to each other...
	if solidRem.TriangleCount() != surfaceRem.TriangleCount() {
		t.Errorf("removal variants should match: %d vs %d",
			solidRem.TriangleCount(), surfaceRem.TriangleCount())
	}
	// ...and larger than no-removal variants (extra cavity shell).
	if solidRem.TriangleCount() <= solid.TriangleCount() {
		t.Errorf("removal STL should be larger: %d vs %d",
			solidRem.TriangleCount(), solid.TriangleCount())
	}

	// Orientation semantics.
	findShell := func(m *mesh.Mesh, name string) *mesh.Shell {
		s := m.ShellByName(name)
		if s == nil {
			t.Fatalf("shell %q missing", name)
		}
		return s
	}
	if s := findShell(solid, "sphere"); s.Orient != mesh.Outward || s.ShellVolume() <= 0 {
		t.Error("solid sphere should be outward with positive volume")
	}
	if s := findShell(surface, "sphere"); s.Orient != mesh.OpenSurface || s.ShellVolume() >= 0 {
		t.Error("surface sphere should be reversed open shell")
	}
	if s := findShell(solidRem, "prism-cavity-0"); s.Orient != mesh.Inward || s.ShellVolume() >= 0 {
		t.Error("cavity shell should be inward with negative volume")
	}

	// Net volume: with removal + solid insert the volumes cancel back to
	// the full prism.
	boxVol := size.X * size.Y * size.Z
	if math.Abs(solidRem.Volume()-boxVol)/boxVol > 0.02 {
		t.Errorf("solid-removal mesh volume = %v, want ~%v", solidRem.Volume(), boxVol)
	}
	// Surface + removal leaves the cavity empty (volume reduced).
	if surfaceRem.Volume() >= boxVol*0.999 {
		t.Errorf("surface-removal volume = %v should be below box volume %v",
			surfaceRem.Volume(), boxVol)
	}
}

func TestSphereSegments(t *testing.T) {
	latC, lonC := SphereSegments(3.175, Coarse)
	latF, lonF := SphereSegments(3.175, Custom)
	if latF <= latC || lonF <= lonC {
		t.Errorf("finer resolution should subdivide more: coarse %d/%d custom %d/%d",
			latC, lonC, latF, lonF)
	}
}

func TestTessellateValidatesCleanly(t *testing.T) {
	m, err := Tessellate(splitBarPart(t), Fine)
	if err != nil {
		t.Fatal(err)
	}
	if issues := m.Validate(1e-9); len(issues) != 0 {
		t.Errorf("unexpected validation issues: %v", issues)
	}
}

func TestSTLExportRoundTrip(t *testing.T) {
	m, err := Tessellate(barPart(t), Coarse)
	if err != nil {
		t.Fatal(err)
	}
	data, err := stl.Marshal(m, stl.Binary, "bar")
	if err != nil {
		t.Fatal(err)
	}
	got, err := stl.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TriangleCount() != m.TriangleCount() {
		t.Errorf("round trip count %d vs %d", got.TriangleCount(), m.TriangleCount())
	}
}
