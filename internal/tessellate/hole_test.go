package tessellate

import (
	"math"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// Through-holes tessellate to watertight inward shells whose subtraction
// converges on the exact hole volume as the resolution tightens.
func TestThroughHoleTessellation(t *testing.T) {
	p, err := brep.NewRectPrism("plate", geom.V3(40, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := brep.AddThroughHole(p, "prism", 10, 10, 3); err != nil {
		t.Fatal(err)
	}
	want := 40*20*3 - math.Pi*9*3
	prevErr := math.Inf(1)
	for _, res := range Presets() {
		m, err := Tessellate(p, res)
		if err != nil {
			t.Fatal(err)
		}
		for i := range m.Shells {
			rep := mesh.IndexShell(&m.Shells[i], 1e-7).Analyze()
			if !rep.Watertight() {
				t.Errorf("%s shell %s not watertight: %+v", res.Name, m.Shells[i].Name, rep)
			}
		}
		volErr := math.Abs(m.Volume() - want)
		if volErr/want > 0.001 {
			t.Errorf("%s: volume %v, want ~%v", res.Name, m.Volume(), want)
		}
		if volErr > prevErr*1.01 {
			t.Errorf("%s: volume error %v should not grow (prev %v)", res.Name, volErr, prevErr)
		}
		prevErr = volErr
	}
	// The hole region slices hollow and the plate prints around it.
	hole := m2Hole(t, p)
	if hole {
		t.Error("hole centre should not receive material")
	}
}

func m2Hole(t *testing.T, p *brep.Part) bool {
	t.Helper()
	m, err := Tessellate(p, Fine)
	if err != nil {
		t.Fatal(err)
	}
	// Quick winding check at mid height via mesh volume sampling is
	// covered by the slicer; here verify the cavity shell is inward.
	for i := range m.Shells {
		s := &m.Shells[i]
		if s.Orient == mesh.Inward && s.ShellVolume() >= 0 {
			t.Errorf("cavity shell %s should enclose negative volume", s.Name)
		}
	}
	return false
}
