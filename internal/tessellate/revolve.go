package tessellate

import (
	"fmt"
	"math"
	"sync"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// station is one axial sampling station of a solid of revolution.
type station struct {
	x float64
	r float64
}

// revolveStations computes the angular segment count and the axial
// stations for a revolve at the given resolution — the sampling plan
// shared by the production mesher and its reference oracle.
func revolveStations(r *brep.Revolve, res Resolution) ([]station, int, error) {
	if err := r.Validate(); err != nil {
		return nil, 0, err
	}
	maxR := 0.0
	const probe = 256
	for i := 0; i <= probe; i++ {
		x := r.X0 + float64(i)/probe*(r.X1-r.X0)
		if v := r.Radius(x); v > maxR {
			maxR = v
		}
	}
	// Angular segments from the deviation and angle limits.
	step := math.Min(
		2*math.Acos(geom.Clamp(1-res.Deviation/maxR, -1, 1)),
		res.AngleDeg*math.Pi/180,
	)
	if step <= 0 || math.IsNaN(step) {
		step = math.Pi / 8
	}
	nTheta := int(math.Ceil(2 * math.Pi / step))
	if nTheta < 8 {
		nTheta = 8
	}

	// Axial stations: adaptive per smooth piece, evaluated one-sided at
	// piece edges so steps stay sharp.
	const edgeEps = 1e-9
	var stations []station
	pieces := r.Pieces()
	for pi, piece := range pieces {
		a, b := piece[0], piece[1]
		evalAt := func(x float64) float64 {
			return r.Radius(geom.Clamp(x, a+edgeEps*(b-a), b-edgeEps*(b-a)))
		}
		n := 1
		for ; n <= 4096; n *= 2 {
			ok := true
			for i := 0; i < n && ok; i++ {
				xa := a + float64(i)/float64(n)*(b-a)
				xb := a + float64(i+1)/float64(n)*(b-a)
				ra, rb := evalAt(xa), evalAt(xb)
				for _, f := range [3]float64{0.25, 0.5, 0.75} {
					xm := xa + f*(xb-xa)
					rm := evalAt(xm)
					// Chordal deviation of the radius profile.
					lin := ra + (rb-ra)*f
					if math.Abs(rm-lin) > res.Deviation {
						ok = false
						break
					}
				}
			}
			if ok {
				break
			}
		}
		for i := 0; i <= n; i++ {
			x := a + float64(i)/float64(n)*(b-a)
			if i == 0 && pi > 0 {
				// Double station at an interior break: right-side value.
				stations = append(stations, station{x: x, r: evalAt(a + edgeEps*(b-a))})
				continue
			}
			stations = append(stations, station{x: x, r: evalAt(x)})
		}
	}
	return stations, nTheta, nil
}

// ringTrig is the pooled per-call scratch of tessellateRevolve: one ring's
// worth of sin/cos values, computed once per revolve instead of per point.
type ringTrig struct {
	sin, cos []float64
}

var ringTrigPool = sync.Pool{New: func() any { return new(ringTrig) }}

// tessellateRevolve meshes a solid of revolution: adaptive axial stations
// per smooth profile piece, angular rings sized by the chordal deviation,
// flat disc caps at the ends and annular faces at profile steps.
//
// The facet stream is bit-identical to tessellateRevolveReference
// (property tested): the ring trig table holds exactly the values the
// per-point expressions produce, including the j == nTheta wrap column
// (theta = 2*pi, whose sin/cos differ in floating point from theta = 0),
// and the triangle buffer is sized up front.
func tessellateRevolve(r *brep.Revolve, name, bodyName string, res Resolution) (mesh.Shell, error) {
	stations, nTheta, err := revolveStations(r, res)
	if err != nil {
		return mesh.Shell{}, err
	}

	rt := ringTrigPool.Get().(*ringTrig)
	defer ringTrigPool.Put(rt)
	if cap(rt.sin) < nTheta+1 {
		rt.sin = make([]float64, nTheta+1)
		rt.cos = make([]float64, nTheta+1)
	}
	rt.sin = rt.sin[:nTheta+1]
	rt.cos = rt.cos[:nTheta+1]
	for j := 0; j <= nTheta; j++ {
		theta := 2 * math.Pi * float64(j) / float64(nTheta)
		rt.sin[j] = math.Sin(theta)
		rt.cos[j] = math.Cos(theta)
	}
	ringPoint := func(st station, j int) geom.Vec3 {
		return geom.V3(
			st.x,
			r.Axis.X+st.r*rt.cos[j],
			r.Axis.Y+st.r*rt.sin[j],
		)
	}

	// Size the buffer exactly: 2 triangles per quad of each non-degenerate
	// band, plus one fan triangle per segment for each of the two caps.
	bands := 0
	for i := 0; i+1 < len(stations); i++ {
		if stations[i].x != stations[i+1].x || stations[i].r != stations[i+1].r {
			bands++
		}
	}
	shell := mesh.Shell{Name: name, Body: bodyName, Orient: mesh.Outward,
		Tris: make([]geom.Triangle, 0, (2*bands+2)*nTheta)}
	// Side bands (including annular step faces, which are just bands
	// between coincident-x rings of different radii).
	for i := 0; i+1 < len(stations); i++ {
		s0, s1 := stations[i], stations[i+1]
		if s0.x == s1.x && s0.r == s1.r {
			continue
		}
		for j := 0; j < nTheta; j++ {
			p00 := ringPoint(s0, j)
			p01 := ringPoint(s0, j+1)
			p10 := ringPoint(s1, j)
			p11 := ringPoint(s1, j+1)
			shell.Tris = append(shell.Tris,
				geom.Triangle{A: p00, B: p01, C: p10},
				geom.Triangle{A: p01, B: p11, C: p10},
			)
		}
	}
	// End caps: fans from the axis point, oriented outward (-x at X0,
	// +x at X1).
	capFan := func(st station, outwardPlus bool) {
		centre := geom.V3(st.x, r.Axis.X, r.Axis.Y)
		for j := 0; j < nTheta; j++ {
			a := ringPoint(st, j)
			b := ringPoint(st, j+1)
			if outwardPlus {
				shell.Tris = append(shell.Tris, geom.Triangle{A: centre, B: a, C: b})
			} else {
				shell.Tris = append(shell.Tris, geom.Triangle{A: centre, B: b, C: a})
			}
		}
	}
	capFan(stations[0], false)
	capFan(stations[len(stations)-1], true)

	if len(shell.Tris) == 0 {
		return mesh.Shell{}, fmt.Errorf("tessellate: empty revolve")
	}
	return shell, nil
}

// tessellateRevolveReference is the straightforward per-point trig
// implementation, retained as the oracle for tessellateRevolve's
// bit-identity property test.
func tessellateRevolveReference(r *brep.Revolve, name, bodyName string, res Resolution) (mesh.Shell, error) {
	stations, nTheta, err := revolveStations(r, res)
	if err != nil {
		return mesh.Shell{}, err
	}
	ringPoint := func(st station, j int) geom.Vec3 {
		theta := 2 * math.Pi * float64(j) / float64(nTheta)
		return geom.V3(
			st.x,
			r.Axis.X+st.r*math.Cos(theta),
			r.Axis.Y+st.r*math.Sin(theta),
		)
	}
	shell := mesh.Shell{Name: name, Body: bodyName, Orient: mesh.Outward}
	for i := 0; i+1 < len(stations); i++ {
		s0, s1 := stations[i], stations[i+1]
		if s0.x == s1.x && s0.r == s1.r {
			continue
		}
		for j := 0; j < nTheta; j++ {
			p00 := ringPoint(s0, j)
			p01 := ringPoint(s0, j+1)
			p10 := ringPoint(s1, j)
			p11 := ringPoint(s1, j+1)
			shell.Tris = append(shell.Tris,
				geom.Triangle{A: p00, B: p01, C: p10},
				geom.Triangle{A: p01, B: p11, C: p10},
			)
		}
	}
	capFan := func(st station, outwardPlus bool) {
		centre := geom.V3(st.x, r.Axis.X, r.Axis.Y)
		for j := 0; j < nTheta; j++ {
			a := ringPoint(st, j)
			b := ringPoint(st, j+1)
			if outwardPlus {
				shell.Tris = append(shell.Tris, geom.Triangle{A: centre, B: a, C: b})
			} else {
				shell.Tris = append(shell.Tris, geom.Triangle{A: centre, B: b, C: a})
			}
		}
	}
	capFan(stations[0], false)
	capFan(stations[len(stations)-1], true)

	if len(shell.Tris) == 0 {
		return mesh.Shell{}, fmt.Errorf("tessellate: empty revolve")
	}
	return shell, nil
}
