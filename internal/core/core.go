// Package core implements ObfusCADe, the paper's contribution: CAD-model
// obfuscation against counterfeiting. A designer embeds security features
// into a model so that the part manufactures correctly only under a
// secret combination of processing conditions — the AM analogue of logic
// locking (ref [10]). Under every other combination the printed artifact
// is visibly or structurally defective, and the presence/absence of the
// embedded features authenticates genuine parts.
//
// Two feature families from the paper are implemented:
//
//   - The spline split feature (§3.1): a zero-volume split through the
//     part whose tessellation mismatch prints invisibly only at high STL
//     resolution in the x-y orientation.
//   - The embedded sphere feature (§3.2): a sphere whose printed content
//     (model vs. dissolvable support) depends on the CAD operation order
//     the manufacturer applies before export.
package core

import (
	"fmt"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mech"
	"obfuscade/internal/tessellate"
)

// SplitOptions configures the spline split feature.
type SplitOptions struct {
	// Body names the prismatic body to split.
	Body string
	// Amplitude is the wave amplitude of the split curve in mm.
	Amplitude float64
	// Waves is the number of half-waves across the gauge region.
	Waves int
	// Dims are the tensile-bar dimensions the curve is routed through.
	Dims brep.TensileBarDims
}

// SphereOptions configures the embedded sphere feature.
type SphereOptions struct {
	// Host names the solid body to embed into.
	Host string
	// Center and Radius locate the sphere.
	Center geom.Vec3
	Radius float64
}

// FeatureKind labels an embedded security feature.
type FeatureKind string

const (
	// FeatureSplineSplit is the §3.1 feature.
	FeatureSplineSplit FeatureKind = "spline-split"
	// FeatureEmbeddedSphere is the §3.2 feature.
	FeatureEmbeddedSphere FeatureKind = "embedded-sphere"
)

// FeatureRecord describes one embedded feature (kept in the secret
// manifest).
type FeatureRecord struct {
	Kind FeatureKind
	// Detail is a human-readable parameter summary.
	Detail string
	// Sphere holds the sphere geometry for authentication checks.
	Sphere *SphereOptions
}

// Key is the secret processing combination that manufactures the
// protected model correctly — the ObfusCADe process key.
type Key struct {
	// Resolution is the required STL export setting.
	Resolution tessellate.Resolution
	// Orientation is the required print orientation.
	Orientation mech.Orientation
	// RestoreSphere is the secret CAD operation: cut the spherical
	// cavity and re-embed a *solid* sphere before export (§3.2.2's
	// "with material removal, solid" variant). Without it the sphere
	// region prints as dissolvable support.
	RestoreSphere bool
}

// String implements fmt.Stringer.
func (k Key) String() string {
	return fmt.Sprintf("res=%s orient=%s restore-sphere=%t",
		k.Resolution.Name, k.Orientation, k.RestoreSphere)
}

// Manifest is the IP owner's secret record of a protected design.
type Manifest struct {
	PartName string
	Features []FeatureRecord
	// Key is the unique correct processing combination.
	Key Key
	// CADDigest fingerprints the distributed CAD file.
	CADDigest string
}

// Protected pairs the sabotaged (distributed) part with its manifest.
type Protected struct {
	Part     *brep.Part
	Manifest Manifest
}

// ProtectSplineSplit embeds the spline split feature into the part and
// returns the manifest entry. The correct key for this feature is
// (Fine or Custom STL resolution, x-y orientation).
func ProtectSplineSplit(p *brep.Part, opts SplitOptions) (FeatureRecord, error) {
	if opts.Body == "" {
		opts.Body = "bar"
	}
	if opts.Amplitude == 0 {
		opts.Amplitude = 2
	}
	if opts.Waves == 0 {
		opts.Waves = 3
	}
	zero := brep.TensileBarDims{}
	if opts.Dims == zero {
		opts.Dims = brep.DefaultTensileBar()
	}
	s, err := brep.SplitSplineThroughGauge(opts.Dims, opts.Amplitude, opts.Waves)
	if err != nil {
		return FeatureRecord{}, fmt.Errorf("core: split spline: %w", err)
	}
	if err := brep.SplitBySpline(p, opts.Body, s); err != nil {
		return FeatureRecord{}, fmt.Errorf("core: split feature: %w", err)
	}
	return FeatureRecord{
		Kind: FeatureSplineSplit,
		Detail: fmt.Sprintf("body=%s amplitude=%g waves=%d arc=%.3g mm",
			opts.Body, opts.Amplitude, opts.Waves, s.ArcLength()),
	}, nil
}

// ProtectEmbeddedSphere embeds the sphere feature in its sabotaged state:
// a solid sphere body *without* material removal, which slices as a
// hollow region (Table 3 row 1). Only a manufacturer who knows the secret
// CAD operation (ApplyKey with RestoreSphere) obtains a dense part.
func ProtectEmbeddedSphere(p *brep.Part, opts SphereOptions) (FeatureRecord, error) {
	if opts.Host == "" {
		opts.Host = "prism"
	}
	if opts.Radius <= 0 {
		return FeatureRecord{}, fmt.Errorf("core: sphere radius must be positive")
	}
	err := brep.EmbedSphere(p, opts.Host, opts.Center, opts.Radius, brep.EmbedOpts{})
	if err != nil {
		return FeatureRecord{}, fmt.Errorf("core: sphere feature: %w", err)
	}
	o := opts
	return FeatureRecord{
		Kind: FeatureEmbeddedSphere,
		Detail: fmt.Sprintf("host=%s c=%v r=%g (distributed without material removal)",
			opts.Host, opts.Center, opts.Radius),
		Sphere: &o,
	}, nil
}

// ClonePart deep-copies a part via its native serialisation.
func ClonePart(p *brep.Part) (*brep.Part, error) {
	data, err := brep.Save(p)
	if err != nil {
		return nil, err
	}
	return brep.Load(data)
}

// ApplyKey returns a copy of the protected part transformed by the
// CAD-operation component of the key: with RestoreSphere, the sabotaged
// sphere body is replaced by the material-removal + solid-sphere sequence
// that prints dense (§3.2.2). The resolution and orientation components
// are applied downstream by the manufacturing pipeline.
func ApplyKey(prot *Protected, key Key) (*brep.Part, error) {
	part, err := ClonePart(prot.Part)
	if err != nil {
		return nil, err
	}
	if !key.RestoreSphere {
		return part, nil
	}
	var sphere *SphereOptions
	for _, f := range prot.Manifest.Features {
		if f.Kind == FeatureEmbeddedSphere {
			sphere = f.Sphere
		}
	}
	if sphere == nil {
		return part, nil // key bit set but no sphere feature: no-op
	}
	if !part.RemoveBody("sphere") {
		return nil, fmt.Errorf("core: protected part lost its sphere body")
	}
	if err := brep.EmbedSphere(part, sphere.Host, sphere.Center, sphere.Radius,
		brep.EmbedOpts{MaterialRemoval: true}); err != nil {
		return nil, fmt.Errorf("core: restore sphere: %w", err)
	}
	return part, nil
}
