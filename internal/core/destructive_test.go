package core

import (
	"testing"

	"obfuscade/internal/mech"
)

func TestDestructiveCheck(t *testing.T) {
	ref := mech.ABS(mech.XY)

	genuine, err := mech.TestGroup("genuine", mech.Specimen{Mat: ref}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := DestructiveCheck(genuine, ref, 0.15); v != Genuine {
		t.Errorf("intact-quality batch verdict = %v", v)
	}

	fake, err := mech.TestGroup("fake", mech.Specimen{
		Mat: ref, SeamPresent: true, SeamQuality: 0.35, Kt: 2.6,
	}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := DestructiveCheck(fake, ref, 0.15); v != Counterfeit {
		t.Errorf("counterfeit batch verdict = %v (strain %v vs ref %v)",
			v, fake.FailureStrain.Mean, ref.FailureStrain)
	}

	// Borderline: mildly degraded seam lands in Suspect territory.
	borderline, err := mech.TestGroup("mild", mech.Specimen{
		Mat: ref, SeamPresent: true, SeamQuality: 0.85, Kt: 1.8,
	}, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	ratio := borderline.FailureStrain.Mean / ref.FailureStrain
	v := DestructiveCheck(borderline, ref, 0.15)
	switch {
	case ratio >= 0.85 && v != Genuine:
		t.Errorf("ratio %v should be genuine, got %v", ratio, v)
	case ratio < 0.70 && v != Counterfeit:
		t.Errorf("ratio %v should be counterfeit, got %v", ratio, v)
	}

	// Degenerate reference.
	if v := DestructiveCheck(genuine, mech.Material{}, 0.15); v != Suspect {
		t.Errorf("degenerate reference verdict = %v", v)
	}
}
