package core

import (
	"context"
	"fmt"
	"math"

	"obfuscade/internal/gcode"
	"obfuscade/internal/mech"
	"obfuscade/internal/memo"
	"obfuscade/internal/obs"
	"obfuscade/internal/parallel"
	"obfuscade/internal/printer"
	"obfuscade/internal/report"
	"obfuscade/internal/tessellate"
	"obfuscade/internal/trace"
)

// Quality-matrix metrics: one stage span per matrix pass plus key
// counters (enumerated and failed).
var (
	stMatrix      = obs.Stage("core.matrix")
	mMatrixKeys   = obs.Default().Counter("core.matrix.keys")
	mMatrixFailed = obs.Default().Counter("core.matrix.failedkeys")
)

// AllKeys enumerates the processing-condition key space: every STL
// resolution preset x both orientations x the CAD-operation bit (included
// only when the protected part carries a sphere feature).
func AllKeys(prot *Protected) []Key {
	hasSphere := false
	for _, f := range prot.Manifest.Features {
		if f.Kind == FeatureEmbeddedSphere {
			hasSphere = true
		}
	}
	var keys []Key
	for _, res := range tessellate.Presets() {
		for _, o := range []mech.Orientation{mech.XY, mech.XZ} {
			if hasSphere {
				for _, rs := range []bool{false, true} {
					keys = append(keys, Key{Resolution: res, Orientation: o, RestoreSphere: rs})
				}
			} else {
				keys = append(keys, Key{Resolution: res, Orientation: o})
			}
		}
	}
	return keys
}

// MatrixEntry is one row of the quality matrix.
type MatrixEntry struct {
	Key     Key
	Quality QualityReport
	// PrintHours is the simulated print time for this key's G-code in
	// hours, measured in the same pass so the key-space analysis does not
	// re-manufacture (zero when Err is set).
	PrintHours float64
	// Err records this key's manufacture failure; Quality and PrintHours
	// are meaningless when non-nil. Completed entries are retained even
	// when sibling keys fail.
	Err error
	// Provenance is the per-key audit record (STL digest, counter
	// deltas, stage wall times), captured in the same pass. Failed keys
	// carry a record with the Error field set.
	Provenance *Provenance
}

// QualityMatrix manufactures the protected part under every key in the
// key space and grades each artifact — the paper's central claim
// ("the model should print in high quality only under a specific set of
// process flow and printing conditions") made measurable.
//
// Keys are manufactured concurrently on the default worker pool; entries
// come back in key order and each key's pipeline is self-contained, so
// the matrix is byte-identical to a serial run. A failing key does not
// abort the matrix: its entry carries the error, the remaining keys still
// manufacture, and the aggregated error lists every failed key in key
// order.
func QualityMatrix(prot *Protected, prof printer.Profile) ([]MatrixEntry, error) {
	return QualityMatrixWorkers(prot, prof, 0)
}

// QualityMatrixWorkers is QualityMatrix with an explicit worker count
// (<= 0 means the process default). workers == 1 is the serial baseline
// the determinism tests compare against.
func QualityMatrixWorkers(prot *Protected, prof printer.Profile, workers int) ([]MatrixEntry, error) {
	span := stMatrix.Start()
	keys := AllKeys(prot)
	mMatrixKeys.Add(int64(len(keys)))
	ctx, runSpan := trace.StartSpan(context.Background(), "run", "core.matrix",
		trace.A("part", prot.Part.Name), trace.A("keys", fmt.Sprint(len(keys))))
	entries := make([]MatrixEntry, len(keys))
	// One stage memo per matrix pass: keys that share geometry-determining
	// inputs (same CAD bytes + resolution across the two orientations)
	// tessellate once and reuse. Unbounded is safe — residency is a handful
	// of master meshes and z-sweep indexes, all released with the run.
	mm := memo.New(0)
	err := parallel.ForEachCtx(ctx, len(keys), workers, func(tctx context.Context, i int) error {
		key := keys[i]
		entries[i].Key = key
		kctx, ksp := trace.StartSpan(tctx, "key", key.String())
		defer ksp.End()
		res, err := ManufactureMemoCtx(kctx, prot, key, prof, mm)
		if err != nil {
			entries[i].Err = err
			fp := failedProvenance(prot.Part.Name, key, 0, err)
			entries[i].Provenance = &fp
			ksp.SetArg("error", "manufacture")
			return err
		}
		sim, err := gcode.SimulateCtx(kctx, res.Run.GCode, gcode.DimensionEliteEnvelope())
		if err != nil {
			entries[i].Err = fmt.Errorf("core: simulate under %v: %w", key, err)
			fp := failedProvenance(prot.Part.Name, key, 0, entries[i].Err)
			entries[i].Provenance = &fp
			ksp.SetArg("error", "simulate")
			return entries[i].Err
		}
		entries[i].Quality = res.Quality
		entries[i].PrintHours = sim.PrintTime / 3600
		prov := NewProvenance(res, sim, 0)
		entries[i].Provenance = &prov
		ksp.SetArg("grade", res.Quality.Grade.String())
		// The voxel grid is the key's largest allocation and nothing after
		// grading and provenance capture reads it (entries keep neither the
		// run nor the build); recycle its storage for the next key.
		res.Run.Build.Grid.Release()
		return nil
	})
	for i := range entries {
		if entries[i].Err != nil {
			mMatrixFailed.Inc()
		}
	}
	runSpan.End()
	span.EndErr(err)
	return entries, err
}

// GoodKeys filters the matrix for keys that produce Good parts. Failed
// entries never count as good.
func GoodKeys(entries []MatrixEntry) []Key {
	var out []Key
	for _, e := range entries {
		if e.Err == nil && e.Quality.Grade == Good {
			out = append(out, e.Key)
		}
	}
	return out
}

// MatrixTable renders the quality matrix. Keys whose manufacture failed
// render with the distinct "failed" grade and dashed quality cells.
func MatrixTable(entries []MatrixEntry) *report.Table {
	t := &report.Table{
		Title: "ObfusCADe quality matrix (processing conditions vs artifact grade)",
		Headers: []string{"STL resolution", "Orientation", "CAD op", "Grade",
			"Surface", "Bond", "Discont."},
	}
	for _, e := range entries {
		op := "-"
		if e.Key.RestoreSphere {
			op = "restore-sphere"
		}
		if e.Err != nil {
			t.AddRow(e.Key.Resolution.Name, e.Key.Orientation.String(), op,
				"failed", "-", "-", "-")
			continue
		}
		surface := "clean"
		if e.Quality.SurfaceDisrupted {
			surface = "disrupted"
		}
		t.AddRow(
			e.Key.Resolution.Name,
			e.Key.Orientation.String(),
			op,
			e.Quality.Grade.String(),
			surface,
			fmt.Sprintf("%.2f", e.Quality.SeamBondQuality),
			fmt.Sprintf("%.0f%%", 100*e.Quality.DiscontinuousFraction),
		)
	}
	return t
}

// KeySpaceReport quantifies the logic-locking analogy (ref [10]): how
// large the key space is and what a brute-force attempt costs, given that
// each wrong key requires a full print-and-test cycle.
type KeySpaceReport struct {
	// TotalKeys is the size of the enumerated key space.
	TotalKeys int
	// GoodKeys is the number of keys yielding Good parts.
	GoodKeys int
	// FailedKeys is the number of keys whose manufacture failed; they are
	// excluded from the print-time statistics.
	FailedKeys int
	// MeanPrintHours is the average simulated print time per attempt.
	MeanPrintHours float64
	// ExpectedBruteForceHours is the expected printing time to find a
	// good key by random search without replacement.
	ExpectedBruteForceHours float64
}

// AnalyzeKeySpace manufactures under every key and measures brute-force
// cost using the G-code simulator's print-time estimates. The matrix and
// the report come from one shared manufacture pass; callers who already
// hold the entries should use KeySpaceFromEntries instead of paying for a
// second pass. A partial matrix (failed keys marked per entry) is still
// analysed and returned alongside the aggregated error.
func AnalyzeKeySpace(prot *Protected, prof printer.Profile) (KeySpaceReport, []MatrixEntry, error) {
	entries, err := QualityMatrix(prot, prof)
	return KeySpaceFromEntries(entries), entries, err
}

// KeySpaceFromEntries derives the brute-force cost report from
// precomputed matrix entries, so the matrix and key-space analyses share
// one manufacture pass per key.
func KeySpaceFromEntries(entries []MatrixEntry) KeySpaceReport {
	rep := KeySpaceReport{TotalKeys: len(entries)}
	var totalHours float64
	completed := 0
	for _, e := range entries {
		if e.Err != nil {
			rep.FailedKeys++
			continue
		}
		completed++
		totalHours += e.PrintHours
	}
	rep.GoodKeys = len(GoodKeys(entries))
	if completed > 0 {
		rep.MeanPrintHours = totalHours / float64(completed)
	}
	if rep.GoodKeys > 0 {
		// Expected draws without replacement until the first success:
		// (N+1)/(G+1).
		expectedTries := float64(rep.TotalKeys+1) / float64(rep.GoodKeys+1)
		rep.ExpectedBruteForceHours = expectedTries * rep.MeanPrintHours
	} else {
		rep.ExpectedBruteForceHours = math.Inf(1)
	}
	return rep
}
