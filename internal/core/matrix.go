package core

import (
	"fmt"
	"math"

	"obfuscade/internal/gcode"
	"obfuscade/internal/mech"
	"obfuscade/internal/printer"
	"obfuscade/internal/report"
	"obfuscade/internal/tessellate"
)

// AllKeys enumerates the processing-condition key space: every STL
// resolution preset x both orientations x the CAD-operation bit (included
// only when the protected part carries a sphere feature).
func AllKeys(prot *Protected) []Key {
	hasSphere := false
	for _, f := range prot.Manifest.Features {
		if f.Kind == FeatureEmbeddedSphere {
			hasSphere = true
		}
	}
	var keys []Key
	for _, res := range tessellate.Presets() {
		for _, o := range []mech.Orientation{mech.XY, mech.XZ} {
			if hasSphere {
				for _, rs := range []bool{false, true} {
					keys = append(keys, Key{Resolution: res, Orientation: o, RestoreSphere: rs})
				}
			} else {
				keys = append(keys, Key{Resolution: res, Orientation: o})
			}
		}
	}
	return keys
}

// MatrixEntry is one row of the quality matrix.
type MatrixEntry struct {
	Key     Key
	Quality QualityReport
}

// QualityMatrix manufactures the protected part under every key in the
// key space and grades each artifact — the paper's central claim
// ("the model should print in high quality only under a specific set of
// process flow and printing conditions") made measurable.
func QualityMatrix(prot *Protected, prof printer.Profile) ([]MatrixEntry, error) {
	var out []MatrixEntry
	for _, key := range AllKeys(prot) {
		res, err := Manufacture(prot, key, prof)
		if err != nil {
			return nil, err
		}
		out = append(out, MatrixEntry{Key: key, Quality: res.Quality})
	}
	return out, nil
}

// GoodKeys filters the matrix for keys that produce Good parts.
func GoodKeys(entries []MatrixEntry) []Key {
	var out []Key
	for _, e := range entries {
		if e.Quality.Grade == Good {
			out = append(out, e.Key)
		}
	}
	return out
}

// MatrixTable renders the quality matrix.
func MatrixTable(entries []MatrixEntry) *report.Table {
	t := &report.Table{
		Title: "ObfusCADe quality matrix (processing conditions vs artifact grade)",
		Headers: []string{"STL resolution", "Orientation", "CAD op", "Grade",
			"Surface", "Bond", "Discont."},
	}
	for _, e := range entries {
		op := "-"
		if e.Key.RestoreSphere {
			op = "restore-sphere"
		}
		surface := "clean"
		if e.Quality.SurfaceDisrupted {
			surface = "disrupted"
		}
		t.AddRow(
			e.Key.Resolution.Name,
			e.Key.Orientation.String(),
			op,
			e.Quality.Grade.String(),
			surface,
			fmt.Sprintf("%.2f", e.Quality.SeamBondQuality),
			fmt.Sprintf("%.0f%%", 100*e.Quality.DiscontinuousFraction),
		)
	}
	return t
}

// KeySpaceReport quantifies the logic-locking analogy (ref [10]): how
// large the key space is and what a brute-force attempt costs, given that
// each wrong key requires a full print-and-test cycle.
type KeySpaceReport struct {
	// TotalKeys is the size of the enumerated key space.
	TotalKeys int
	// GoodKeys is the number of keys yielding Good parts.
	GoodKeys int
	// MeanPrintHours is the average simulated print time per attempt.
	MeanPrintHours float64
	// ExpectedBruteForceHours is the expected printing time to find a
	// good key by random search without replacement.
	ExpectedBruteForceHours float64
}

// AnalyzeKeySpace manufactures under every key and measures brute-force
// cost using the G-code simulator's print-time estimates.
func AnalyzeKeySpace(prot *Protected, prof printer.Profile) (KeySpaceReport, []MatrixEntry, error) {
	keys := AllKeys(prot)
	var entries []MatrixEntry
	var totalHours float64
	for _, key := range keys {
		res, err := Manufacture(prot, key, prof)
		if err != nil {
			return KeySpaceReport{}, nil, err
		}
		entries = append(entries, MatrixEntry{Key: key, Quality: res.Quality})
		rep, err := gcode.Simulate(res.Run.GCode, gcode.DimensionEliteEnvelope())
		if err != nil {
			return KeySpaceReport{}, nil, err
		}
		totalHours += rep.PrintTime / 3600
	}
	good := len(GoodKeys(entries))
	rep := KeySpaceReport{
		TotalKeys:      len(keys),
		GoodKeys:       good,
		MeanPrintHours: totalHours / float64(len(keys)),
	}
	if good > 0 {
		// Expected draws without replacement until the first success:
		// (N+1)/(G+1).
		expectedTries := float64(rep.TotalKeys+1) / float64(good+1)
		rep.ExpectedBruteForceHours = expectedTries * rep.MeanPrintHours
	} else {
		rep.ExpectedBruteForceHours = math.Inf(1)
	}
	return rep, entries, nil
}
