package core

import (
	"testing"

	"obfuscade/internal/mech"
	"obfuscade/internal/printer"
	"obfuscade/internal/stl"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/tessellate"
)

// exportSTL runs the owner's export at the given resolution and returns
// the binary STL a thief would exfiltrate.
func exportSTL(t *testing.T, prot *Protected, res tessellate.Resolution) []byte {
	t.Helper()
	part, err := ClonePart(prot.Part)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(part, res)
	if err != nil {
		t.Fatal(err)
	}
	data, err := stl.Marshal(m, stl.Binary, part.Name)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The paper's primary threat: counterfeiting from a stolen STL. The STL
// freezes the resolution, so a coarse-only release leaves the thief no
// orientation that prints cleanly.
func TestManufactureFromStolenCoarseSTL(t *testing.T) {
	prot, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	data := exportSTL(t, prot, tessellate.Coarse)
	prof := printer.DimensionElite()

	for _, o := range []mech.Orientation{mech.XY, mech.XZ} {
		build, q, err := ManufactureFromSTL(data, o, prof)
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		if q.Grade == Good {
			t.Errorf("stolen coarse STL in %v should not print Good (got %v)", o, q.Grade)
		}
		if build.ModelVolume <= 0 {
			t.Errorf("%v: empty build", o)
		}
	}
}

// A custom-resolution export leaks the good x-y print — the owner must
// control export resolution as part of the key.
func TestManufactureFromStolenCustomSTL(t *testing.T) {
	prot, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	data := exportSTL(t, prot, tessellate.Custom)
	prof := printer.DimensionElite()

	_, qXY, err := ManufactureFromSTL(data, mech.XY, prof)
	if err != nil {
		t.Fatal(err)
	}
	if qXY.Grade != Good {
		t.Errorf("custom STL x-y grade = %v, want good", qXY.Grade)
	}
	_, qXZ, err := ManufactureFromSTL(data, mech.XZ, prof)
	if err != nil {
		t.Fatal(err)
	}
	if qXZ.Grade != Defective {
		t.Errorf("custom STL x-z grade = %v, want defective", qXZ.Grade)
	}
}

func TestManufactureFromSTLErrors(t *testing.T) {
	prof := printer.DimensionElite()
	if _, _, err := ManufactureFromSTL([]byte("garbage"), mech.XY, prof); err == nil {
		t.Error("expected error for garbage STL")
	}
}

// Firmware Trojan + weight-check mitigation end to end.
func TestFirmwareTrojanCaughtByWeightCheck(t *testing.T) {
	prot, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	part, err := ApplyKey(prot, prot.Manifest.Key)
	if err != nil {
		t.Fatal(err)
	}
	pl := supplychain.Pipeline{
		Resolution:  prot.Manifest.Key.Resolution,
		Orientation: prot.Manifest.Key.Orientation,
		Printer:     printer.DimensionElite(),
		PrintOpts:   printer.Options{ExtrusionTrim: 0.8},
	}
	run, err := pl.Execute(part)
	if err != nil {
		t.Fatal(err)
	}
	design := part.Volume()
	if err := printer.WeightCheck(run.Build, design, 0.1); err == nil {
		t.Error("weight check should flag the trojaned build")
	}
	// Uncompromised build passes.
	pl.PrintOpts = printer.Options{}
	clean, err := pl.Execute(part)
	if err != nil {
		t.Fatal(err)
	}
	if err := printer.WeightCheck(clean.Build, design, 0.1); err != nil {
		t.Errorf("clean build failed weight check: %v", err)
	}
	if err := printer.WeightCheck(clean.Build, -1, 0.1); err == nil {
		t.Error("expected error for invalid design volume")
	}
}

// Two stacked split features: the multi-surface variation §3.1 suggests.
func TestDoubleSplitFeature(t *testing.T) {
	prot, err := NewDoubleSplitBar("bar")
	if err != nil {
		t.Fatal(err)
	}
	if len(prot.Part.Bodies) != 3 {
		t.Fatalf("bodies = %d, want 3", len(prot.Part.Bodies))
	}
	res, err := Manufacture(prot, Key{Resolution: tessellate.Coarse, Orientation: mech.XZ},
		printer.DimensionElite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Run.Build.Seams) < 2 {
		t.Errorf("double split should produce >= 2 seams, got %d", len(res.Run.Build.Seams))
	}
	if res.Quality.Grade != Defective {
		t.Errorf("double-split x-z grade = %v", res.Quality.Grade)
	}
	// The correct key still prints cleanly.
	good, err := Manufacture(prot, prot.Manifest.Key, printer.DimensionElite())
	if err != nil {
		t.Fatal(err)
	}
	if good.Quality.Grade != Good {
		t.Errorf("double-split correct key grade = %v (%v)", good.Quality.Grade, good.Quality.Notes)
	}
}
