package core

import (
	"fmt"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mech"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/tessellate"
)

// NewProtectedBar builds the paper's protected tensile bar: the dogbone
// with the spline split feature, and optionally an embedded sphere in the
// upper grip (combining both §3.1 and §3.2 features enlarges the key
// space). The correct key is (Fine STL, x-y orientation, restore-sphere
// when present).
func NewProtectedBar(name string, withSphere bool) (*Protected, error) {
	part, err := brep.NewTensileBar(name, brep.DefaultTensileBar())
	if err != nil {
		return nil, err
	}
	var features []FeatureRecord
	fr, err := ProtectSplineSplit(part, SplitOptions{})
	if err != nil {
		return nil, err
	}
	features = append(features, fr)
	if withSphere {
		sr, err := ProtectEmbeddedSphere(part, SphereOptions{
			Host:   "bar-upper",
			Center: geom.V3(15, 14, 1.6),
			Radius: 1.2,
		})
		if err != nil {
			return nil, err
		}
		features = append(features, sr)
	}
	cad, err := brep.Save(part)
	if err != nil {
		return nil, err
	}
	return &Protected{
		Part: part,
		Manifest: Manifest{
			PartName: name,
			Features: features,
			Key: Key{
				Resolution:    tessellate.Custom,
				Orientation:   mech.XY,
				RestoreSphere: withSphere,
			},
			CADDigest: supplychain.Digest(cad),
		},
	}, nil
}

// NewDoubleSplitBar builds a bar carrying two stacked spline split
// features — the multi-surface variation §3.1 suggests for complex
// industrial designs ("addition of one or more surfaces ... such features
// can overlap or cut across other design features"). The first split runs
// along the centreline, the second cuts the upper body again.
func NewDoubleSplitBar(name string) (*Protected, error) {
	d := brep.DefaultTensileBar()
	part, err := brep.NewTensileBar(name, d)
	if err != nil {
		return nil, err
	}
	s1, err := brep.SplitSplineAt(d, d.MidY(), 1.0, 3)
	if err != nil {
		return nil, err
	}
	if err := brep.SplitBySpline(part, "bar", s1); err != nil {
		return nil, err
	}
	s2, err := brep.SplitSplineAt(d, d.MidY()+1.8, 0.5, 2)
	if err != nil {
		return nil, err
	}
	if err := brep.SplitBySpline(part, "bar-upper", s2); err != nil {
		return nil, err
	}
	cad, err := brep.Save(part)
	if err != nil {
		return nil, err
	}
	return &Protected{
		Part: part,
		Manifest: Manifest{
			PartName: name,
			Features: []FeatureRecord{
				{Kind: FeatureSplineSplit, Detail: "centreline split, amplitude 1.0, 3 half-waves"},
				{Kind: FeatureSplineSplit, Detail: "upper split, amplitude 0.5, 2 half-waves"},
			},
			Key:       Key{Resolution: tessellate.Custom, Orientation: mech.XY},
			CADDigest: supplychain.Digest(cad),
		},
	}, nil
}

// NewProtectedPrism builds the paper's §3.2 demonstrator: the rectangular
// prism (1 x 0.5 x 0.5 in) with the embedded sphere feature in its
// sabotaged no-removal state.
func NewProtectedPrism(name string) (*Protected, error) {
	part, err := brep.NewRectPrism(name, geom.V3(25.4, 12.7, 12.7))
	if err != nil {
		return nil, err
	}
	fr, err := ProtectEmbeddedSphere(part, SphereOptions{
		Host:   "prism",
		Center: geom.V3(12.7, 6.35, 6.35),
		Radius: 3.175,
	})
	if err != nil {
		return nil, err
	}
	cad, err := brep.Save(part)
	if err != nil {
		return nil, err
	}
	return &Protected{
		Part: part,
		Manifest: Manifest{
			PartName:  name,
			Features:  []FeatureRecord{fr},
			Key:       Key{Resolution: tessellate.Fine, Orientation: mech.XY, RestoreSphere: true},
			CADDigest: supplychain.Digest(cad),
		},
	}, nil
}

// VerifyDistribution checks that a received CAD file is the authentic
// protected design (digest match) — the integrity control the IP owner's
// partners apply on receipt.
func VerifyDistribution(prot *Protected, cadBytes []byte) error {
	if !supplychain.VerifyDigest(cadBytes, prot.Manifest.CADDigest) {
		return fmt.Errorf("core: CAD file does not match the protected design manifest")
	}
	return nil
}
