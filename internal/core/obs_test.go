package core

import (
	"bytes"
	"testing"

	"obfuscade/internal/obs"
	"obfuscade/internal/printer"
)

// deterministicMetricsJSON runs one seeded quality matrix over a fresh
// metric state and returns the deterministic snapshot view.
func deterministicMetricsJSON(t *testing.T, workers int) []byte {
	t.Helper()
	obs.Default().Reset()
	prot, err := NewProtectedBar("obs-bar", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QualityMatrixWorkers(prot, printer.DimensionElite(), workers); err != nil {
		t.Fatal(err)
	}
	out, err := obs.Default().Snapshot().DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMatrixMetricsDeterministic(t *testing.T) {
	// Two identical seeded runs must produce byte-identical deterministic
	// metrics JSON: every counter and timing count depends only on the
	// work, not on wall-clock or scheduling.
	a := deterministicMetricsJSON(t, 1)
	b := deterministicMetricsJSON(t, 1)
	if !bytes.Equal(a, b) {
		t.Errorf("serial reruns diverge:\n%s\n--- vs ---\n%s", a, b)
	}
	// A pool of 8 performs exactly the same work, so the deterministic
	// view — including parallel.tasks.* totals — must match serial.
	c := deterministicMetricsJSON(t, 8)
	if !bytes.Equal(a, c) {
		t.Errorf("pool-of-8 metrics diverge from serial:\n%s\n--- vs ---\n%s", a, c)
	}
	obs.Default().Reset()
}

func TestMatrixMetricsCoverStages(t *testing.T) {
	obs.Default().Reset()
	prot, err := NewProtectedBar("obs-bar", false)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := QualityMatrixWorkers(prot, printer.DimensionElite(), 2)
	if err != nil {
		t.Fatal(err)
	}
	snap := obs.Default().Snapshot()
	if v, _ := snap.Counter("core.matrix.keys"); v != int64(len(entries)) {
		t.Errorf("core.matrix.keys = %d, want %d", v, len(entries))
	}
	if v, _ := snap.Counter("core.manufacture.calls"); v != int64(len(entries)) {
		t.Errorf("core.manufacture.calls = %d, want %d", v, len(entries))
	}
	// Each manufacture slices, prints and simulates; every stage must have
	// fired and graded every key.
	var graded int64
	for _, name := range []string{"core.grade.good", "core.grade.degraded", "core.grade.defective"} {
		v, _ := snap.Counter(name)
		graded += v
	}
	if graded != int64(len(entries)) {
		t.Errorf("grade counters sum to %d, want %d", graded, len(entries))
	}
	for _, stage := range []string{
		"slicer.slice.seconds", "printer.print.seconds", "gcode.simulate.seconds",
	} {
		h, ok := snap.Stage(stage)
		if !ok || h.Count < int64(len(entries)) {
			t.Errorf("stage %s: count %d, want >= %d", stage, h.Count, len(entries))
		}
	}
	if v, _ := snap.Counter("slicer.layers.sliced"); v == 0 {
		t.Error("slicer.layers.sliced = 0")
	}
	obs.Default().Reset()
}
