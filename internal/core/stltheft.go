package core

import (
	"fmt"
	"math"

	"obfuscade/internal/geom"
	"obfuscade/internal/mech"
	"obfuscade/internal/mesh"
	"obfuscade/internal/printer"
	"obfuscade/internal/slicer"
	"obfuscade/internal/stl"
)

// ManufactureFromSTL simulates the paper's primary counterfeiting threat:
// an attacker who exfiltrated only the exported STL file. The attacker
// re-imports the triangle soup, recovers the body structure by
// edge-connected components, chooses a print orientation, slices and
// prints — but cannot change the STL resolution, because the tessellation
// was fixed at export time. An IP owner who only ever releases Coarse
// exports therefore removes the resolution component of the key from the
// attacker's control entirely: no orientation prints the split feature
// cleanly.
func ManufactureFromSTL(stlBytes []byte, o mech.Orientation, prof printer.Profile) (*printer.Build, QualityReport, error) {
	m, err := stl.Unmarshal(stlBytes)
	if err != nil {
		return nil, QualityReport{}, fmt.Errorf("core: import stolen STL: %w", err)
	}
	if len(m.Shells) != 1 {
		return nil, QualityReport{}, fmt.Errorf("core: expected one anonymous shell, got %d", len(m.Shells))
	}
	// Recover per-body shells: split bodies share no welded edges, so
	// edge connectivity separates them (vertex tolerance above the
	// float32 quantisation of the STL round trip).
	comps := m.Shells[0].SplitEdgeComponents(1e-4)
	if len(comps) == 0 {
		return nil, QualityReport{}, fmt.Errorf("core: empty STL")
	}
	recovered := &mesh.Mesh{Shells: comps}

	if o == mech.XZ {
		recovered.Transform(geom.RotateX(math.Pi / 2))
	}
	b := recovered.Bounds()
	recovered.Transform(geom.Translate(geom.V3(-b.Min.X, -b.Min.Y, -b.Min.Z)))

	opts := slicer.DefaultOptions()
	opts.LayerHeight = prof.LayerHeight
	opts.RoadWidth = prof.RoadWidth
	sliced, err := slicer.Slice(recovered, opts)
	if err != nil {
		return nil, QualityReport{}, fmt.Errorf("core: slice stolen STL: %w", err)
	}
	build, err := printer.Print(sliced, prof, printer.Options{})
	if err != nil {
		return nil, QualityReport{}, fmt.Errorf("core: print stolen STL: %w", err)
	}
	q := GradeBuild(build, true)
	// Weight/volume sanity: a build far below the recovered shells'
	// combined volume (e.g. a body sliced inside-out after a botched
	// mesh "repair") is defective regardless of its surface finish.
	var expected float64
	for i := range recovered.Shells {
		v := recovered.Shells[i].ShellVolume()
		if v < 0 {
			v = -v
		}
		expected += v
	}
	if expected > 0 {
		if err := printer.WeightCheck(build, expected, 0.15); err != nil {
			q.Grade = Defective
			q.Notes = append(q.Notes, err.Error())
		}
	}
	return build, q, nil
}
