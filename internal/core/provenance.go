package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"

	"obfuscade/internal/gcode"
)

// Provenance is the per-key audit record a production AM service
// retains for every manufacture: which key was applied, the exact STL
// that left the CAD stage (by digest), how the part graded, and what
// each pipeline stage cost. One NDJSON line per key is the
// -manifest-out artifact of the CLIs.
//
// Deterministic fields (key settings, digest, triangle/layer/command
// counts, grade, print hours) depend only on the seed and inputs;
// StageSeconds is wall-clock-derived and varies run to run.
type Provenance struct {
	// Part is the protected part name.
	Part string `json:"part"`
	// Seed is the process noise seed the caller ran under.
	Seed int64 `json:"seed"`
	// KeyResolution, KeyOrientation and KeyRestoreSphere are the
	// processing-condition key settings.
	KeyResolution    string `json:"key_resolution"`
	KeyOrientation   string `json:"key_orientation"`
	KeyRestoreSphere bool   `json:"key_restore_sphere"`
	// STLSHA256 is the hex SHA-256 of the exported binary STL — the
	// artifact a counterfeiter would exfiltrate.
	STLSHA256 string `json:"stl_sha256,omitempty"`
	// Triangles and STLBytes size the exported STL.
	Triangles int `json:"triangles,omitempty"`
	STLBytes  int `json:"stl_bytes,omitempty"`
	// Grade is the artifact's quality classification.
	Grade string `json:"grade,omitempty"`
	// PrintHours is the simulated print time (zero when no simulation
	// ran for this key).
	PrintHours float64 `json:"print_hours,omitempty"`
	// CounterDeltas attributes the run's deterministic obs counters to
	// this key: how many layers, contours, deposited layers, seams and
	// simulated commands this key's pipeline contributed.
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
	// StageSeconds is the per-stage wall time of the process chain.
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
	// Error records a failed manufacture; the quality fields are absent.
	Error string `json:"error,omitempty"`
}

// NewProvenance derives the audit record of one manufacture. sim may be
// nil when no G-code simulation ran; seed is the caller's process noise
// seed (the manufacture chain itself is noise-free, but the record pins
// the run configuration).
func NewProvenance(res *ManufactureResult, sim *gcode.Report, seed int64) Provenance {
	p := Provenance{
		Part:             res.Part.Name,
		Seed:             seed,
		KeyResolution:    res.Key.Resolution.Name,
		KeyOrientation:   res.Key.Orientation.String(),
		KeyRestoreSphere: res.Key.RestoreSphere,
		Grade:            res.Quality.Grade.String(),
	}
	run := res.Run
	if run == nil {
		return p
	}
	sum := sha256.Sum256(run.STLBytes)
	p.STLSHA256 = hex.EncodeToString(sum[:])
	p.Triangles = run.STLStats.Triangles
	p.STLBytes = len(run.STLBytes)
	p.StageSeconds = run.StageSeconds
	deltas := map[string]int64{}
	if run.Sliced != nil {
		deltas["slicer.layers.sliced"] = int64(len(run.Sliced.Layers))
		var contours int64
		for i := range run.Sliced.Layers {
			contours += int64(len(run.Sliced.Layers[i].Contours))
		}
		deltas["slicer.contours"] = contours
	}
	if run.Build != nil {
		deltas["printer.layers.deposited"] = int64(run.Build.LayerCount)
		deltas["printer.seams"] = int64(len(run.Build.Seams))
	}
	if sim != nil {
		deltas["gcode.sim.commands"] = int64(sim.Commands)
		p.PrintHours = sim.PrintTime / 3600
	}
	p.CounterDeltas = deltas
	return p
}

// failedProvenance records a key whose manufacture failed.
func failedProvenance(part string, key Key, seed int64, err error) Provenance {
	return Provenance{
		Part:             part,
		Seed:             seed,
		KeyResolution:    key.Resolution.Name,
		KeyOrientation:   key.Orientation.String(),
		KeyRestoreSphere: key.RestoreSphere,
		Error:            err.Error(),
	}
}

// WriteManifests writes one NDJSON provenance line per matrix entry in
// key order (failed keys carry their error), stamping each line with
// the caller's seed. It returns the number of lines written.
func WriteManifests(w io.Writer, entries []MatrixEntry, seed int64) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	n := 0
	for i := range entries {
		p := entries[i].Provenance
		if p == nil {
			continue
		}
		line := *p
		line.Seed = seed
		if err := enc.Encode(line); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}
