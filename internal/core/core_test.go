package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/mech"
	"obfuscade/internal/parallel"
	"obfuscade/internal/printer"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/tessellate"
)

func TestNewProtectedBar(t *testing.T) {
	prot, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(prot.Part.Bodies) != 2 {
		t.Fatalf("bodies = %d, want 2 (split)", len(prot.Part.Bodies))
	}
	if len(prot.Manifest.Features) != 1 || prot.Manifest.Features[0].Kind != FeatureSplineSplit {
		t.Errorf("manifest features = %+v", prot.Manifest.Features)
	}
	if prot.Manifest.CADDigest == "" {
		t.Error("manifest should fingerprint the CAD file")
	}
}

func TestNewProtectedBarWithSphere(t *testing.T) {
	prot, err := NewProtectedBar("bar", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(prot.Part.Bodies) != 3 {
		t.Fatalf("bodies = %d, want 3", len(prot.Part.Bodies))
	}
	if len(prot.Manifest.Features) != 2 {
		t.Fatalf("features = %d, want 2", len(prot.Manifest.Features))
	}
	if !prot.Manifest.Key.RestoreSphere {
		t.Error("correct key should include the restore-sphere CAD op")
	}
}

func TestVerifyDistribution(t *testing.T) {
	prot, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	cad, err := brep.Save(prot.Part)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDistribution(prot, cad); err != nil {
		t.Errorf("authentic file rejected: %v", err)
	}
	cad[100] ^= 0xFF
	if err := VerifyDistribution(prot, cad); err == nil {
		t.Error("tampered file accepted")
	}
}

func TestApplyKeyRestoreSphere(t *testing.T) {
	prot, err := NewProtectedPrism("prism")
	if err != nil {
		t.Fatal(err)
	}
	// Without the key bit: the sabotaged no-removal sphere remains.
	plain, err := ApplyKey(prot, Key{Resolution: tessellate.Fine})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plain.Body("prism").Cavities); got != 0 {
		t.Errorf("no-key cavities = %d, want 0", got)
	}
	// With the key bit: material removal applied, solid sphere inserted.
	restored, err := ApplyKey(prot, Key{Resolution: tessellate.Fine, RestoreSphere: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(restored.Body("prism").Cavities); got != 1 {
		t.Errorf("restored cavities = %d, want 1", got)
	}
	if restored.Body("sphere").Kind != brep.Solid {
		t.Error("restored sphere should be solid")
	}
	// The original protected part must be untouched.
	if len(prot.Part.Body("prism").Cavities) != 0 {
		t.Error("ApplyKey mutated the protected part")
	}
}

func TestManufactureCorrectVsWrongKey(t *testing.T) {
	prot, err := NewProtectedPrism("prism")
	if err != nil {
		t.Fatal(err)
	}
	prof := printer.DimensionElite()

	good, err := Manufacture(prot, prot.Manifest.Key, prof)
	if err != nil {
		t.Fatal(err)
	}
	if good.Quality.Grade != Good {
		t.Errorf("correct key grade = %v (%v)", good.Quality.Grade, good.Quality.Notes)
	}

	wrong := prot.Manifest.Key
	wrong.RestoreSphere = false
	bad, err := Manufacture(prot, wrong, prof)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Quality.Grade != Defective {
		t.Errorf("wrong key grade = %v (%v)", bad.Quality.Grade, bad.Quality.Notes)
	}
	if bad.Quality.UnexpectedCavities == 0 {
		t.Error("wrong key should leave a washed-out cavity")
	}
}

// The paper's central result as a matrix: only (Fine/Custom, x-y) keys
// print the split bar in good quality.
func TestQualityMatrixSplitBar(t *testing.T) {
	prot, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := QualityMatrix(prot, printer.DimensionElite())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("matrix entries = %d, want 6", len(entries))
	}
	for _, e := range entries {
		wantGood := e.Key.Orientation == mech.XY && e.Key.Resolution.Name != "coarse"
		isGood := e.Quality.Grade == Good
		if wantGood != isGood {
			t.Errorf("key %v: grade %v (surface=%t bond=%.2f disc=%.2f)",
				e.Key, e.Quality.Grade, e.Quality.SurfaceDisrupted,
				e.Quality.SeamBondQuality, e.Quality.DiscontinuousFraction)
		}
		// Every x-z print is structurally defective (Fig. 7).
		if e.Key.Orientation == mech.XZ && e.Quality.Grade != Defective {
			t.Errorf("x-z key %v should be defective, got %v", e.Key, e.Quality.Grade)
		}
	}
	good := GoodKeys(entries)
	if len(good) != 2 {
		t.Errorf("good keys = %d, want 2 (fine/custom x-y)", len(good))
	}
	tbl := MatrixTable(entries)
	out := tbl.Render()
	if !strings.Contains(out, "defective") || !strings.Contains(out, "good") {
		t.Error("matrix table missing grades")
	}
}

// The parallel quality matrix must be entry-for-entry identical to the
// serial baseline: same keys, same grades, same print-time estimates.
func TestQualityMatrixParallelMatchesSerial(t *testing.T) {
	prot, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	prof := printer.DimensionElite()
	serial, err := QualityMatrixWorkers(prot, prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := QualityMatrixWorkers(prot, prof, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("entry counts differ: %d vs %d", len(serial), len(par))
	}
	// Provenance.StageSeconds is wall-clock-derived and legitimately
	// differs run to run; every other field must match exactly.
	strip := func(e MatrixEntry) MatrixEntry {
		if e.Provenance != nil {
			p := *e.Provenance
			p.StageSeconds = nil
			e.Provenance = &p
		}
		return e
	}
	for i := range serial {
		if !reflect.DeepEqual(strip(serial[i]), strip(par[i])) {
			t.Errorf("entry %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], par[i])
		}
	}
}

// A failing key must not discard the rest of the matrix: every entry is
// returned, failures are recorded per key, and the aggregated error lists
// them in key order.
func TestQualityMatrixPartialFailure(t *testing.T) {
	prot, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	bad := printer.DimensionElite()
	bad.LayerHeight = 0 // fails profile validation for every key
	entries, err := QualityMatrix(prot, bad)
	if err == nil {
		t.Fatal("expected aggregated error from failing keys")
	}
	if len(entries) != 6 {
		t.Fatalf("partial matrix entries = %d, want 6", len(entries))
	}
	var list parallel.ErrorList
	if !errors.As(err, &list) {
		t.Fatalf("error %T is not a parallel.ErrorList", err)
	}
	if len(list) != 6 {
		t.Errorf("aggregated errors = %d, want 6", len(list))
	}
	for i, te := range list {
		if te.Index != i {
			t.Errorf("error %d has index %d; aggregation must be in key order", i, te.Index)
		}
	}
	for i, e := range entries {
		if e.Err == nil {
			t.Errorf("entry %d should carry its manufacture error", i)
		}
	}
	if got := GoodKeys(entries); len(got) != 0 {
		t.Errorf("failed entries counted as good keys: %v", got)
	}
	out := MatrixTable(entries).Render()
	if !strings.Contains(out, "failed") {
		t.Error("matrix table should render failed keys with the failed grade")
	}
}

// Key-space statistics over a mixed matrix: failed keys are excluded from
// print-time averages but still counted, and an all-bad matrix yields an
// infinite brute-force cost.
func TestKeySpaceFromEntriesMixed(t *testing.T) {
	good := QualityReport{Grade: Good}
	degraded := QualityReport{Grade: Degraded}
	entries := []MatrixEntry{
		{Quality: good, PrintHours: 2},
		{Quality: good, PrintHours: 4},
		{Err: errors.New("boom")},
		{Quality: degraded, PrintHours: 3},
	}
	rep := KeySpaceFromEntries(entries)
	if rep.TotalKeys != 4 || rep.GoodKeys != 2 || rep.FailedKeys != 1 {
		t.Errorf("report counts = %+v", rep)
	}
	if math.Abs(rep.MeanPrintHours-3) > 1e-12 {
		t.Errorf("mean print hours = %v, want 3", rep.MeanPrintHours)
	}
	if math.Abs(rep.ExpectedBruteForceHours-5) > 1e-12 {
		t.Errorf("expected brute force = %v, want 5", rep.ExpectedBruteForceHours)
	}
	none := KeySpaceFromEntries([]MatrixEntry{{Quality: degraded, PrintHours: 1}})
	if !math.IsInf(none.ExpectedBruteForceHours, 1) {
		t.Errorf("no good keys should cost +Inf, got %v", none.ExpectedBruteForceHours)
	}
}

func TestAuthenticateGenuineVsCounterfeit(t *testing.T) {
	prot, err := NewProtectedPrism("prism")
	if err != nil {
		t.Fatal(err)
	}
	prof := printer.DimensionElite()

	genuine, err := Manufacture(prot, prot.Manifest.Key, prof)
	if err != nil {
		t.Fatal(err)
	}
	rep := Authenticate(genuine.Run.Build, &prot.Manifest)
	if rep.Verdict != Genuine {
		t.Errorf("genuine part verdict = %v (%v)", rep.Verdict, rep.Notes)
	}

	// A counterfeiter prints the stolen file without the CAD op.
	wrong := prot.Manifest.Key
	wrong.RestoreSphere = false
	fake, err := Manufacture(prot, wrong, prof)
	if err != nil {
		t.Fatal(err)
	}
	rep = Authenticate(fake.Run.Build, &prot.Manifest)
	if rep.Verdict != Counterfeit {
		t.Errorf("counterfeit verdict = %v (%v)", rep.Verdict, rep.Notes)
	}
	if !rep.CavityFound || !rep.CavityMatchesSphere {
		t.Errorf("counterfeit evidence incomplete: %+v", rep)
	}
}

func TestAuthenticateSplitCounterfeit(t *testing.T) {
	prot, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	prof := printer.DimensionElite()
	wrong := Key{Resolution: tessellate.Coarse, Orientation: mech.XZ}
	fake, err := Manufacture(prot, wrong, prof)
	if err != nil {
		t.Fatal(err)
	}
	rep := Authenticate(fake.Run.Build, &prot.Manifest)
	if rep.Verdict != Counterfeit {
		t.Errorf("x-z counterfeit verdict = %v (%v)", rep.Verdict, rep.Notes)
	}
	if !rep.SeamDefective {
		t.Error("x-z counterfeit should show a defective seam")
	}
}

func TestKeySpaceAnalysis(t *testing.T) {
	prot, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	rep, entries, err := AnalyzeKeySpace(prot, printer.DimensionElite())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalKeys != 6 || len(entries) != 6 {
		t.Errorf("key space = %d, want 6", rep.TotalKeys)
	}
	if rep.GoodKeys != 2 {
		t.Errorf("good keys = %d, want 2", rep.GoodKeys)
	}
	if rep.MeanPrintHours <= 0 {
		t.Error("mean print time should be positive")
	}
	if rep.ExpectedBruteForceHours <= rep.MeanPrintHours {
		t.Error("brute force should cost more than one attempt")
	}
}

func TestAllKeysWithSphere(t *testing.T) {
	prot, err := NewProtectedBar("bar", true)
	if err != nil {
		t.Fatal(err)
	}
	keys := AllKeys(prot)
	if len(keys) != 12 {
		t.Errorf("key space with sphere = %d, want 12", len(keys))
	}
}

func TestProtectErrors(t *testing.T) {
	part, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProtectSplineSplit(part, SplitOptions{Body: "missing"}); err == nil {
		t.Error("expected error for missing body")
	}
	if _, err := ProtectEmbeddedSphere(part, SphereOptions{Host: "bar", Radius: -1}); err == nil {
		t.Error("expected error for negative radius")
	}
}

func TestGradeString(t *testing.T) {
	if Good.String() != "good" || Degraded.String() != "degraded" || Defective.String() != "defective" {
		t.Error("Grade.String misbehaves")
	}
	if Genuine.String() != "genuine" || Counterfeit.String() != "counterfeit" || Suspect.String() != "suspect" {
		t.Error("Verdict.String misbehaves")
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Resolution: tessellate.Fine, Orientation: mech.XZ, RestoreSphere: true}
	if got := k.String(); !strings.Contains(got, "fine") || !strings.Contains(got, "x-z") {
		t.Errorf("Key.String = %q", got)
	}
}

func TestManifestDigestStability(t *testing.T) {
	a, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.CADDigest != b.Manifest.CADDigest {
		t.Error("protection should be deterministic")
	}
	if !supplychain.VerifyDigest(mustSave(t, b.Part), a.Manifest.CADDigest) {
		t.Error("digest should verify across builds")
	}
}

func mustSave(t *testing.T, p *brep.Part) []byte {
	t.Helper()
	data, err := brep.Save(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestBuildProtectedVocabulary(t *testing.T) {
	for _, name := range []string{"bar", "bar-sphere", "double-bar", "prism"} {
		prot, err := BuildProtected(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prot.Part.Name != name {
			t.Fatalf("%s: part named %q", name, prot.Part.Name)
		}
	}
	if _, err := BuildProtected("teapot"); err == nil {
		t.Fatal("unknown part must not build")
	}
}

func TestRunJobProducesProvenance(t *testing.T) {
	prot, err := BuildProtected("bar")
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Part: "bar", Key: prot.Manifest.Key, Seed: 5, Simulate: true}
	job, err := RunJob(context.Background(), spec, printer.DimensionElite())
	if err != nil {
		t.Fatal(err)
	}
	if len(job.STL) == 0 {
		t.Fatal("no STL produced")
	}
	p := job.Provenance
	if p.Seed != 5 || p.Part != "bar" || p.STLSHA256 == "" || p.STLBytes != len(job.STL) {
		t.Fatalf("provenance = %+v", p)
	}
	if p.PrintHours <= 0 {
		t.Fatalf("simulated job reported %.2f print hours", p.PrintHours)
	}
	if job.Quality.Grade != Good {
		t.Fatalf("correct key graded %s", job.Quality.Grade)
	}
	// A cancelled context aborts the pipeline mid-run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunJob(ctx, spec, printer.DimensionElite()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job error = %v", err)
	}
}
