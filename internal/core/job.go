package core

import (
	"context"
	"fmt"
	"strconv"

	"obfuscade/internal/gcode"
	"obfuscade/internal/printer"
	"obfuscade/internal/trace"
)

// PipelineVersion names the current output contract of the manufacture
// pipeline. It is hashed into content-addressed cache keys (see
// internal/serve), so bump it whenever a change alters the bytes a job
// produces — STL encoding, slicing, toolpath, G-code or provenance
// fields — to invalidate results cached by older builds.
const PipelineVersion = "obfuscade-pipeline/4"

// JobSpec is one self-contained manufacture request: everything that
// determines the output bytes, and nothing else. The serving layer
// derives cache keys from a canonical encoding of this plus
// PipelineVersion.
type JobSpec struct {
	// Part selects the protected design; see BuildProtected.
	Part string
	// Key is the processing-condition combination to manufacture under.
	Key Key
	// Seed is the process noise seed recorded in the provenance.
	Seed int64
	// Simulate runs the G-code program through the printer envelope
	// simulator and folds the report into the provenance.
	Simulate bool
}

// JobResult is the deliverable of one manufacture job.
type JobResult struct {
	// STL is the exported binary STL.
	STL []byte
	// Provenance is the per-run audit record.
	Provenance Provenance
	// Quality is the artifact's grading.
	Quality QualityReport
}

// BuildProtected constructs the named protected design. The part names
// are the serving API's vocabulary:
//
//	bar         spline-split tensile bar
//	bar-sphere  spline-split bar with the embedded-sphere feature
//	double-bar  bar split into three bodies by two spline surfaces
//	prism       protected rectangular prism
func BuildProtected(part string) (*Protected, error) {
	switch part {
	case "bar":
		return NewProtectedBar(part, false)
	case "bar-sphere":
		return NewProtectedBar(part, true)
	case "double-bar":
		return NewDoubleSplitBar(part)
	case "prism":
		return NewProtectedPrism(part)
	default:
		return nil, fmt.Errorf("core: unknown part %q (want bar, bar-sphere, double-bar or prism)", part)
	}
}

// RunJob manufactures one job end to end: build the protected design,
// run the process chain under the spec's key, optionally simulate the
// G-code, and derive the provenance record. ctx cancellation or
// deadline expiry aborts mid-pipeline (the stages are context-aware
// down to individual layers).
func RunJob(ctx context.Context, spec JobSpec, prof printer.Profile) (*JobResult, error) {
	ctx, sp := trace.StartSpan(ctx, "run", "core.job",
		trace.A("part", spec.Part),
		trace.A("key", spec.Key.String()),
		trace.A("seed", strconv.FormatInt(spec.Seed, 10)))
	defer sp.End()

	prot, err := BuildProtected(spec.Part)
	if err != nil {
		return nil, err
	}
	res, err := ManufactureCtx(ctx, prot, spec.Key, prof)
	if err != nil {
		return nil, err
	}
	var sim *gcode.Report
	if spec.Simulate {
		sim, err = gcode.SimulateCtx(ctx, res.Run.GCode, gcode.DimensionEliteEnvelope())
		if err != nil {
			return nil, err
		}
	}
	return &JobResult{
		STL:        res.Run.STLBytes,
		Provenance: NewProvenance(res, sim, spec.Seed),
		Quality:    res.Quality,
	}, nil
}
