package core

import (
	"fmt"

	"obfuscade/internal/mech"
	"obfuscade/internal/printer"
	"obfuscade/internal/voxel"
)

// Verdict is the outcome of authenticating a physical part.
type Verdict int

const (
	// Genuine parts match the manifest's expected feature signature.
	Genuine Verdict = iota
	// Counterfeit parts show the sabotage signature (the features
	// manifested as defects) or lack the expected marks.
	Counterfeit
	// Suspect parts show mixed evidence.
	Suspect
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Genuine:
		return "genuine"
	case Counterfeit:
		return "counterfeit"
	case Suspect:
		return "suspect"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// AuthReport details the authentication evidence.
type AuthReport struct {
	Verdict Verdict
	// CavityFound reports a washed-out internal cavity (CT scan).
	CavityFound bool
	// CavityMatchesSphere reports that the cavity matches the embedded
	// sphere's position and volume.
	CavityMatchesSphere bool
	// SurfaceDisrupted reports visible split-feature disruption.
	SurfaceDisrupted bool
	// SeamDefective reports a structurally discontinuous seam.
	SeamDefective bool
	// Notes explain the evidence.
	Notes []string
}

// Authenticate inspects a printed artifact (its virtual build: CT-style
// voxel inspection plus visual surface review) against the IP owner's
// manifest. This is the paper's genuine-part identification: features
// must be *absent as defects* on genuine parts, and counterfeit prints
// betray themselves by manifesting them.
func Authenticate(b *printer.Build, man *Manifest) AuthReport {
	rep := AuthReport{}
	hasSphere := false
	var sphere *SphereOptions
	hasSplit := false
	for _, f := range man.Features {
		switch f.Kind {
		case FeatureEmbeddedSphere:
			hasSphere = true
			sphere = f.Sphere
		case FeatureSplineSplit:
			hasSplit = true
		}
	}

	cavities := b.Grid.InternalCavities()
	if len(cavities) > 0 {
		rep.CavityFound = true
		if hasSphere && sphere != nil {
			for _, c := range cavities {
				if cavityMatches(b.Grid, c, sphere) {
					rep.CavityMatchesSphere = true
					rep.Notes = append(rep.Notes,
						"CT: internal cavity matches the embedded sphere signature")
				}
			}
		}
		if !rep.CavityMatchesSphere {
			rep.Notes = append(rep.Notes, "CT: unexpected internal cavity")
		}
	}
	if b.SurfaceDisrupted() {
		rep.SurfaceDisrupted = true
		rep.Notes = append(rep.Notes, "visual: split-feature surface disruption present")
	}
	for _, s := range b.Seams {
		if s.DiscontinuousFraction > defectiveDiscontinuity || s.BondQuality < defectiveBond {
			rep.SeamDefective = true
			rep.Notes = append(rep.Notes, "structural: discontinuous split seam")
		}
	}

	// Genuine parts print the sphere dense (no cavity) and the split
	// invisible (no disruption, bonded seam).
	counterfeitSignals := 0
	if hasSphere && rep.CavityFound {
		counterfeitSignals++
	}
	if hasSplit && (rep.SurfaceDisrupted || rep.SeamDefective) {
		counterfeitSignals++
	}
	unexpected := rep.CavityFound && !hasSphere
	switch {
	case counterfeitSignals > 0:
		rep.Verdict = Counterfeit
	case unexpected:
		rep.Verdict = Suspect
	default:
		rep.Verdict = Genuine
	}
	return rep
}

// DestructiveCheck authenticates by tensile testing a sampled group of
// parts against the intact reference material (Table 1's "tensile
// strength test" mitigation). Counterfeits printed under wrong conditions
// fracture early: a mean failure strain more than deficitTol below the
// reference ductility flags the batch.
func DestructiveCheck(g mech.GroupResult, reference mech.Material, deficitTol float64) Verdict {
	if reference.FailureStrain <= 0 {
		return Suspect
	}
	ratio := g.FailureStrain.Mean / reference.FailureStrain
	switch {
	case ratio >= 1-deficitTol:
		return Genuine
	case ratio >= 1-2*deficitTol:
		return Suspect
	default:
		return Counterfeit
	}
}

// cavityMatches checks a cavity against the sphere signature: centre
// within one radius and volume within 40% of the sphere volume.
func cavityMatches(g *voxel.Grid, c voxel.Component, s *SphereOptions) bool {
	wb := c.BoundsWorld(g)
	centre := wb.Center()
	if centre.Dist(s.Center) > s.Radius {
		return false
	}
	vol := float64(c.Voxels) * g.VoxelVolume()
	sphVol := 4.0 / 3 * 3.141592653589793 * s.Radius * s.Radius * s.Radius
	ratio := vol / sphVol
	return ratio > 0.6 && ratio < 1.4
}
