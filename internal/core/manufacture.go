package core

import (
	"context"
	"fmt"

	"obfuscade/internal/brep"
	"obfuscade/internal/memo"
	"obfuscade/internal/obs"
	"obfuscade/internal/printer"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/trace"
)

// Manufacture metrics: per-run latency plus a deterministic census of the
// grades produced (same seed, same counts — asserted by the obs
// determinism test).
var (
	stManufacture   = obs.Stage("core.manufacture")
	mGradeGood      = obs.Default().Counter("core.grade.good")
	mGradeDegraded  = obs.Default().Counter("core.grade.degraded")
	mGradeDefective = obs.Default().Counter("core.grade.defective")
)

func countGrade(g Grade) {
	switch g {
	case Good:
		mGradeGood.Inc()
	case Degraded:
		mGradeDegraded.Inc()
	case Defective:
		mGradeDefective.Inc()
	}
}

// Grade classifies a manufactured artifact's quality.
type Grade int

const (
	// Good parts are visually clean and structurally sound.
	Good Grade = iota
	// Degraded parts carry visible surface disruption or weakened seams
	// (reduced service life — paper Fig. 8a).
	Degraded
	// Defective parts have structural discontinuities or hollow regions
	// where the design is solid (paper Fig. 7, Fig. 10c).
	Defective
)

// String implements fmt.Stringer.
func (g Grade) String() string {
	switch g {
	case Good:
		return "good"
	case Degraded:
		return "degraded"
	case Defective:
		return "defective"
	default:
		return fmt.Sprintf("Grade(%d)", int(g))
	}
}

// QualityReport summarises the manufactured artifact's fitness.
type QualityReport struct {
	// Grade is the overall classification.
	Grade Grade
	// SurfaceDisrupted reports visible surface defects (Fig. 8a).
	SurfaceDisrupted bool
	// SurfaceDisruptionMM is the widest surface void band in mm.
	SurfaceDisruptionMM float64
	// SeamBondQuality is the weakest body-interface bond (1 when no
	// seam exists).
	SeamBondQuality float64
	// DiscontinuousFraction is the largest per-pair fraction of layers
	// with fully separated bodies (Fig. 7).
	DiscontinuousFraction float64
	// UnexpectedCavities counts internal cavities not present in the
	// design intent (the washed-out sphere of Fig. 10c).
	UnexpectedCavities int
	// Notes explains the grading.
	Notes []string
}

// Quality thresholds for grading.
const (
	// defectiveBond is the seam bond quality below which the part is
	// structurally defective.
	defectiveBond = 0.30
	// degradedBond is the seam bond quality below which service life is
	// reduced.
	degradedBond = 0.70
	// defectiveDiscontinuity is the discontinuous-layer fraction above
	// which the part is defective.
	defectiveDiscontinuity = 0.10
)

// GradeBuild derives a quality report from a virtual build. solidDesign
// declares whether the design intent is a fully dense part (no internal
// cavities expected).
func GradeBuild(b *printer.Build, solidDesign bool) QualityReport {
	rep := QualityReport{SeamBondQuality: 1, SurfaceDisruptionMM: b.SurfaceDisruption}
	if b.SurfaceDisrupted() {
		rep.SurfaceDisrupted = true
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("surface disruption %.3f mm exceeds visible threshold", b.SurfaceDisruption))
	}
	for _, s := range b.Seams {
		if s.BondQuality < rep.SeamBondQuality {
			rep.SeamBondQuality = s.BondQuality
		}
		if s.DiscontinuousFraction > rep.DiscontinuousFraction {
			rep.DiscontinuousFraction = s.DiscontinuousFraction
		}
	}
	if solidDesign {
		rep.UnexpectedCavities = len(b.Grid.InternalCavities())
	}

	switch {
	case rep.UnexpectedCavities > 0:
		rep.Grade = Defective
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("%d internal cavities where design is solid", rep.UnexpectedCavities))
	case rep.DiscontinuousFraction > defectiveDiscontinuity:
		rep.Grade = Defective
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("structural discontinuity in %.0f%% of layers", 100*rep.DiscontinuousFraction))
	case rep.SeamBondQuality < defectiveBond:
		rep.Grade = Defective
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("seam bond quality %.2f below structural minimum", rep.SeamBondQuality))
	case rep.SurfaceDisrupted || rep.SeamBondQuality < degradedBond:
		rep.Grade = Degraded
	default:
		rep.Grade = Good
	}
	return rep
}

// ManufactureResult bundles a pipeline run with its quality grading.
type ManufactureResult struct {
	Key     Key
	Part    *brep.Part
	Run     *supplychain.Run
	Quality QualityReport
}

// Manufacture applies the key's CAD operation, runs the full process
// chain under the key's resolution and orientation, and grades the
// artifact. This is what a manufacturer (legitimate or counterfeit)
// experiences when printing the protected model.
func Manufacture(prot *Protected, key Key, prof printer.Profile) (*ManufactureResult, error) {
	return ManufactureCtx(context.Background(), prot, key, prof)
}

// ManufactureCtx is Manufacture with trace propagation: the stage span
// parents to the span carried by ctx (typically a per-key span of the
// quality matrix) and records the resulting grade once known.
func ManufactureCtx(ctx context.Context, prot *Protected, key Key, prof printer.Profile) (*ManufactureResult, error) {
	return ManufactureMemoCtx(ctx, prot, key, prof, nil)
}

// ManufactureMemoCtx is ManufactureCtx with a shared stage memo wired
// into the process chain. Keys that agree on geometry-determining inputs
// (CAD bytes, resolution) share tessellation work through mm; nil mm is
// exactly ManufactureCtx. Outputs are byte-identical either way — the
// memo trades only time and allocations, never content.
func ManufactureMemoCtx(ctx context.Context, prot *Protected, key Key, prof printer.Profile, mm *memo.Memo) (res *ManufactureResult, err error) {
	span := stManufacture.Start()
	ctx, tsp := trace.StartSpan(ctx, "stage", "core.manufacture")
	defer func() {
		if err == nil {
			countGrade(res.Quality.Grade)
			tsp.SetArg("grade", res.Quality.Grade.String())
		}
		tsp.End()
		span.EndErr(err)
	}()
	part, err := ApplyKey(prot, key)
	if err != nil {
		return nil, err
	}
	pl := supplychain.Pipeline{
		Resolution:  key.Resolution,
		Orientation: key.Orientation,
		Printer:     prof,
		Memo:        mm,
	}
	run, err := pl.ExecuteCtx(ctx, part)
	if err != nil {
		return nil, fmt.Errorf("core: manufacture under %v: %w", key, err)
	}
	return &ManufactureResult{
		Key:     key,
		Part:    part,
		Run:     run,
		Quality: GradeBuild(run.Build, true),
	}, nil
}
