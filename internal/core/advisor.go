package core

import (
	"fmt"

	"obfuscade/internal/brep"
	"obfuscade/internal/mech"
	"obfuscade/internal/printer"
	"obfuscade/internal/stl"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/tessellate"
)

// SplitAdvice evaluates one candidate split-feature parameterisation on
// the axes the paper's §3.1 discussion calls out: the feature must stay
// invisible under the correct key ("without compromising the quality of
// the genuine product"), sabotage strongly under wrong keys, and be hard
// to spot in the distributed files ("minimal chance of detection").
type SplitAdvice struct {
	// Amplitude is the candidate wave amplitude, mm.
	Amplitude float64
	// ArcRatio is the spline arc length over the gauge width (the paper
	// quotes 3.5x for its specimen).
	ArcRatio float64
	// GenuineGrade is the artifact grade under the correct key.
	GenuineGrade Grade
	// GenuineBond is the seam bond quality under the correct key.
	GenuineBond float64
	// WrongKeyGrade is the grade under the worst wrong key (coarse x-z).
	WrongKeyGrade Grade
	// SabotageBond is the seam bond under the worst wrong key.
	SabotageBond float64
	// STLOverhead is the triangle-count overhead of the protected model
	// versus the intact model at Fine resolution — what an attacker
	// inspecting file sizes could notice.
	STLOverhead float64
}

// Usable reports whether the candidate satisfies the paper's constraints:
// genuine prints Good, wrong-key prints Defective.
func (a SplitAdvice) Usable() bool {
	return a.GenuineGrade == Good && a.WrongKeyGrade == Defective
}

// AdviseSplit evaluates candidate amplitudes for the spline split feature
// on the given bar dimensions and returns the per-candidate evidence plus
// the index of the recommended choice (the usable candidate with the
// weakest sabotage bond, i.e. the strongest wrong-key degradation), or -1
// when none qualifies.
func AdviseSplit(dims brep.TensileBarDims, amplitudes []float64, prof printer.Profile) ([]SplitAdvice, int, error) {
	if len(amplitudes) == 0 {
		return nil, -1, fmt.Errorf("core: no candidate amplitudes")
	}
	intactTris, err := intactTriangles(dims)
	if err != nil {
		return nil, -1, err
	}
	var out []SplitAdvice
	best := -1
	for _, amp := range amplitudes {
		adv, err := evaluateSplit(dims, amp, prof, intactTris)
		if err != nil {
			return nil, -1, fmt.Errorf("core: amplitude %g: %w", amp, err)
		}
		out = append(out, adv)
		if adv.Usable() && (best < 0 || adv.SabotageBond < out[best].SabotageBond) {
			best = len(out) - 1
		}
	}
	return out, best, nil
}

func intactTriangles(dims brep.TensileBarDims) (int, error) {
	part, err := brep.NewTensileBar("bar", dims)
	if err != nil {
		return 0, err
	}
	m, err := tessellate.Tessellate(part, tessellate.Fine)
	if err != nil {
		return 0, err
	}
	return m.TriangleCount(), nil
}

func evaluateSplit(dims brep.TensileBarDims, amp float64, prof printer.Profile, intactTris int) (SplitAdvice, error) {
	adv := SplitAdvice{Amplitude: amp}
	part, err := brep.NewTensileBar("bar", dims)
	if err != nil {
		return adv, err
	}
	s, err := brep.SplitSplineThroughGauge(dims, amp, 3)
	if err != nil {
		return adv, err
	}
	adv.ArcRatio = s.ArcLength() / dims.GaugeWidth
	if err := brep.SplitBySpline(part, "bar", s); err != nil {
		return adv, err
	}
	cad, err := brep.Save(part)
	if err != nil {
		return adv, err
	}
	prot := &Protected{
		Part: part,
		Manifest: Manifest{
			PartName:  part.Name,
			Features:  []FeatureRecord{{Kind: FeatureSplineSplit}},
			Key:       Key{Resolution: tessellate.Custom, Orientation: mech.XY},
			CADDigest: supplychain.Digest(cad),
		},
	}

	genuine, err := Manufacture(prot, prot.Manifest.Key, prof)
	if err != nil {
		return adv, err
	}
	adv.GenuineGrade = genuine.Quality.Grade
	adv.GenuineBond = genuine.Quality.SeamBondQuality

	wrong, err := Manufacture(prot, Key{Resolution: tessellate.Coarse, Orientation: mech.XZ}, prof)
	if err != nil {
		return adv, err
	}
	adv.WrongKeyGrade = wrong.Quality.Grade
	adv.SabotageBond = wrong.Quality.SeamBondQuality

	m, err := tessellate.Tessellate(part, tessellate.Fine)
	if err != nil {
		return adv, err
	}
	if intactTris > 0 {
		adv.STLOverhead = float64(stl.BinarySize(m.TriangleCount())-stl.BinarySize(intactTris)) /
			float64(stl.BinarySize(intactTris))
	}
	return adv, nil
}
