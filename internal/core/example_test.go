package core_test

import (
	"fmt"
	"log"

	"obfuscade/internal/core"
	"obfuscade/internal/mech"
	"obfuscade/internal/printer"
	"obfuscade/internal/tessellate"
)

// Protect a design, manufacture it with the correct and a wrong key, and
// compare the outcomes — the minimal ObfusCADe workflow.
func Example() {
	prot, err := core.NewProtectedBar("demo", false)
	if err != nil {
		log.Fatal(err)
	}
	prof := printer.DimensionElite()

	good, err := core.Manufacture(prot, prot.Manifest.Key, prof)
	if err != nil {
		log.Fatal(err)
	}
	wrong := core.Key{Resolution: tessellate.Coarse, Orientation: mech.XZ}
	bad, err := core.Manufacture(prot, wrong, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correct key:", good.Quality.Grade)
	fmt.Println("wrong key:  ", bad.Quality.Grade)
	// Output:
	// correct key: good
	// wrong key:   defective
}

// Authenticate a printed part against the secret manifest.
func ExampleAuthenticate() {
	prot, err := core.NewProtectedPrism("valve")
	if err != nil {
		log.Fatal(err)
	}
	prof := printer.DimensionElite()
	counterfeitKey := prot.Manifest.Key
	counterfeitKey.RestoreSphere = false
	fake, err := core.Manufacture(prot, counterfeitKey, prof)
	if err != nil {
		log.Fatal(err)
	}
	rep := core.Authenticate(fake.Run.Build, &prot.Manifest)
	fmt.Println("verdict:", rep.Verdict)
	fmt.Println("cavity found:", rep.CavityFound)
	// Output:
	// verdict: counterfeit
	// cavity found: true
}
