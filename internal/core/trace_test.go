package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"obfuscade/internal/printer"
	"obfuscade/internal/trace"
)

// matrixTraceJSON runs a full quality matrix at the given pool size on a
// clean default recorder and returns the deterministic event census.
func matrixTraceJSON(t *testing.T, workers int) []byte {
	t.Helper()
	trace.Default().Reset()
	prot, err := NewProtectedBar("trace-bar", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QualityMatrixWorkers(prot, printer.DimensionElite(), workers); err != nil {
		t.Fatal(err)
	}
	if d := trace.Default().Dropped(); d != 0 {
		t.Fatalf("ring dropped %d events during a single matrix pass", d)
	}
	data, err := trace.Default().DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMatrixTraceDeterministic is the event-multiset contract end to
// end: a serial matrix pass and an 8-worker pass over the same part must
// produce byte-identical deterministic trace censuses — scheduling moves
// events between lanes and reorders them, but never changes what work
// happened.
func TestMatrixTraceDeterministic(t *testing.T) {
	serial := matrixTraceJSON(t, 1)
	pooled := matrixTraceJSON(t, 8)
	if !bytes.Equal(serial, pooled) {
		t.Fatalf("trace multiset differs between workers=1 and workers=8:\nserial:\n%s\npooled:\n%s",
			serial, pooled)
	}
	// The census must cover the whole hierarchy: the run span, one span
	// per key, stage spans and batch instants.
	var rows []trace.CountRow
	if err := json.Unmarshal(serial, &rows); err != nil {
		t.Fatal(err)
	}
	cats := map[string]int64{}
	keySpans := int64(0)
	for _, r := range rows {
		cats[r.Cat] += r.Count
		if r.Cat == "key" {
			keySpans += r.Count
		}
	}
	if cats["run"] != 1 {
		t.Fatalf("want exactly 1 run span, got %d", cats["run"])
	}
	if keySpans != 6 {
		t.Fatalf("want 6 key spans (3 resolutions x 2 orientations), got %d", keySpans)
	}
	if cats["stage"] == 0 || cats["batch"] == 0 {
		t.Fatalf("stage/batch events missing from census: %v", cats)
	}
}

// TestMatrixProvenance checks the per-key audit records captured by the
// same matrix pass: digests, counts and grades are filled for every key
// and deterministic across pool sizes.
func TestMatrixProvenance(t *testing.T) {
	run := func(workers int) []MatrixEntry {
		prot, err := NewProtectedBar("prov-bar", false)
		if err != nil {
			t.Fatal(err)
		}
		entries, err := QualityMatrixWorkers(prot, printer.DimensionElite(), workers)
		if err != nil {
			t.Fatal(err)
		}
		return entries
	}
	serial := run(1)
	pooled := run(8)
	if len(serial) != len(pooled) {
		t.Fatalf("entry count differs: %d vs %d", len(serial), len(pooled))
	}
	for i := range serial {
		sp, pp := serial[i].Provenance, pooled[i].Provenance
		if sp == nil || pp == nil {
			t.Fatalf("entry %d missing provenance", i)
		}
		if sp.STLSHA256 == "" || len(sp.STLSHA256) != 64 {
			t.Fatalf("entry %d has bad digest %q", i, sp.STLSHA256)
		}
		if sp.STLSHA256 != pp.STLSHA256 {
			t.Fatalf("entry %d STL digest differs across pool sizes", i)
		}
		if sp.Grade != pp.Grade || sp.Grade == "" {
			t.Fatalf("entry %d grade mismatch: %q vs %q", i, sp.Grade, pp.Grade)
		}
		if sp.Triangles == 0 || sp.Triangles != pp.Triangles {
			t.Fatalf("entry %d triangles mismatch: %d vs %d", i, sp.Triangles, pp.Triangles)
		}
		for _, k := range []string{"slicer.layers.sliced", "printer.layers.deposited", "gcode.sim.commands"} {
			if sp.CounterDeltas[k] == 0 {
				t.Fatalf("entry %d delta %q is zero: %v", i, k, sp.CounterDeltas)
			}
			if sp.CounterDeltas[k] != pp.CounterDeltas[k] {
				t.Fatalf("entry %d delta %q differs across pool sizes", i, k)
			}
		}
		if len(sp.StageSeconds) == 0 {
			t.Fatalf("entry %d has no stage timings", i)
		}
	}
}

func TestWriteManifests(t *testing.T) {
	prot, err := NewProtectedBar("manifest-bar", false)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := QualityMatrix(prot, printer.DimensionElite())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := WriteManifests(&buf, entries, 99)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(entries) {
		t.Fatalf("wrote %d manifests for %d entries", n, len(entries))
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("%d NDJSON lines for %d manifests", len(lines), n)
	}
	for i, line := range lines {
		var p Provenance
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if p.Seed != 99 {
			t.Fatalf("line %d seed %d, want 99 (stamped at write time)", i, p.Seed)
		}
		if p.Part != "manifest-bar" {
			t.Fatalf("line %d part %q", i, p.Part)
		}
	}
	// The caller's entries must not be mutated by the seed stamping.
	if entries[0].Provenance.Seed != 0 {
		t.Fatalf("WriteManifests mutated the caller's provenance: seed %d",
			entries[0].Provenance.Seed)
	}
}
