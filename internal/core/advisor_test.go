package core

import (
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/printer"
)

func TestAdviseSplit(t *testing.T) {
	dims := brep.DefaultTensileBar()
	advice, best, err := AdviseSplit(dims, []float64{1.0, 2.0}, printer.DimensionElite())
	if err != nil {
		t.Fatal(err)
	}
	if len(advice) != 2 {
		t.Fatalf("advice entries = %d", len(advice))
	}
	if best < 0 {
		t.Fatal("no usable amplitude found")
	}
	rec := advice[best]
	if !rec.Usable() {
		t.Errorf("recommended candidate not usable: %+v", rec)
	}
	if rec.GenuineGrade != Good || rec.WrongKeyGrade != Defective {
		t.Errorf("recommendation grades: %+v", rec)
	}
	for _, a := range advice {
		if a.ArcRatio <= dims.Length/dims.GaugeWidth*0.9 {
			t.Errorf("amplitude %g: arc ratio %v implausibly small", a.Amplitude, a.ArcRatio)
		}
		if a.STLOverhead <= 0 {
			t.Errorf("amplitude %g: split should enlarge the STL (%v)", a.Amplitude, a.STLOverhead)
		}
		if a.STLOverhead > 10 {
			t.Errorf("amplitude %g: STL overhead %v out of expected range", a.Amplitude, a.STLOverhead)
		}
	}
	// Larger amplitude sabotages at least as strongly (weaker bond).
	if advice[1].SabotageBond > advice[0].SabotageBond+0.15 {
		t.Errorf("larger amplitude should not bond better: %+v", advice)
	}
}

func TestAdviseSplitErrors(t *testing.T) {
	if _, _, err := AdviseSplit(brep.DefaultTensileBar(), nil, printer.DimensionElite()); err == nil {
		t.Error("expected error for no candidates")
	}
	if _, _, err := AdviseSplit(brep.DefaultTensileBar(), []float64{99}, printer.DimensionElite()); err == nil {
		t.Error("expected error for impossible amplitude")
	}
}
