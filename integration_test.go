package obfuscade_test

import (
	"bytes"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/core"
	"obfuscade/internal/gcode"
	"obfuscade/internal/mech"
	"obfuscade/internal/printer"
	"obfuscade/internal/stl"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/tessellate"
)

// TestGoldenFlow walks the complete ObfusCADe lifecycle end to end:
// protect -> sign -> distribute -> authorized manufacture -> authenticate,
// then the counterfeiting paths: wrong key, stolen STL, overproduction.
func TestGoldenFlow(t *testing.T) {
	// 1. The IP owner protects the design and seals the CAD file.
	prot, err := core.NewProtectedBar("golden", true)
	if err != nil {
		t.Fatal(err)
	}
	cadBytes, err := brep.Save(prot.Part)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := supplychain.NewSigner(bytes.Repeat([]byte{11}, 32))
	if err != nil {
		t.Fatal(err)
	}
	sealed := signer.Seal("golden.ocad", cadBytes)

	// 2. The contracted manufacturer receives the artifact, verifies
	//    provenance, and gets three production tickets.
	if err := sealed.Check(signer.Public()); err != nil {
		t.Fatalf("authentic artifact rejected: %v", err)
	}
	if err := core.VerifyDistribution(prot, sealed.Data); err != nil {
		t.Fatalf("distribution check: %v", err)
	}
	tickets, err := signer.IssueTickets(prot.Manifest.CADDigest, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	validator, err := supplychain.NewTicketValidator(signer.Public(), prot.Manifest.CADDigest)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Authorized production: three prints under the correct key.
	prof := printer.DimensionElite()
	for i, tk := range tickets {
		if err := validator.Authorize(tk); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		res, err := core.Manufacture(prot, prot.Manifest.Key, prof)
		if err != nil {
			t.Fatal(err)
		}
		if res.Quality.Grade != core.Good {
			t.Fatalf("print %d grade = %v (%v)", i, res.Quality.Grade, res.Quality.Notes)
		}
		if rep := core.Authenticate(res.Run.Build, &prot.Manifest); rep.Verdict != core.Genuine {
			t.Fatalf("print %d verdict = %v", i, rep.Verdict)
		}
	}

	// 4. Overproduction: a fourth print has no fresh ticket.
	if err := validator.Authorize(tickets[0]); err == nil {
		t.Fatal("overproduction not blocked")
	}

	// 5. Insider counterfeiting: correct resolution/orientation but
	//    without the secret CAD operation.
	wrongOp := prot.Manifest.Key
	wrongOp.RestoreSphere = false
	fake, err := core.Manufacture(prot, wrongOp, prof)
	if err != nil {
		t.Fatal(err)
	}
	if fake.Quality.Grade == core.Good {
		t.Fatal("counterfeit without CAD op graded good")
	}
	if rep := core.Authenticate(fake.Run.Build, &prot.Manifest); rep.Verdict != core.Counterfeit {
		t.Fatalf("counterfeit verdict = %v", rep.Verdict)
	}

	// 6. Destructive sampling of the counterfeit batch also flags it.
	group, err := mech.TestGroup("sample", mech.Specimen{
		Mat:         mech.ABS(mech.XY),
		SeamPresent: true,
		SeamQuality: fake.Quality.SeamBondQuality * 0.5, // cavity weakens further
		Kt:          2.6,
	}, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if v := core.DestructiveCheck(group, mech.ABS(mech.XY), 0.15); v == core.Genuine {
		t.Fatal("destructive check passed a counterfeit batch")
	}
}

// TestStolenSTLFlow: the thief exfiltrates the coarse STL export, applies
// mesh repair to "clean it up", and still cannot print a good part.
func TestStolenSTLFlow(t *testing.T) {
	prot, err := core.NewProtectedBar("victim", false)
	if err != nil {
		t.Fatal(err)
	}
	part, err := core.ClonePart(prot.Part)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(part, tessellate.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	stolen, err := stl.Marshal(m, stl.Binary, "victim")
	if err != nil {
		t.Fatal(err)
	}

	// The thief repairs the mesh (winding/hole fixes do not remove the
	// split: it is watertight geometry, not damage).
	imported, err := stl.Unmarshal(stolen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := imported.Repair(1e-6, 8); err != nil {
		t.Fatal(err)
	}
	repaired, err := stl.Marshal(imported, stl.Binary, "victim")
	if err != nil {
		t.Fatal(err)
	}

	for _, o := range []mech.Orientation{mech.XY, mech.XZ} {
		_, q, err := core.ManufactureFromSTL(repaired, o, printer.DimensionElite())
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		if q.Grade == core.Good {
			t.Errorf("repaired stolen coarse STL printed good in %v", o)
		}
	}
}

// TestGCodeChainIntegrity: the G-code produced by the chain survives a
// byte round trip, reverses to equivalent toolpaths, and carries the
// expected role structure.
func TestGCodeChainIntegrity(t *testing.T) {
	part, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	pl := supplychain.DefaultPipeline()
	run, err := pl.Execute(part)
	if err != nil {
		t.Fatal(err)
	}
	data, err := gcode.Marshal(run.GCode)
	if err != nil {
		t.Fatal(err)
	}
	back, err := gcode.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	d, err := gcode.Compare(run.GCode, back, gcode.DimensionEliteEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equivalent(1e-3) {
		t.Fatalf("byte round trip not equivalent: %+v", d)
	}
	roles := gcode.RoleBreakdown(back)
	if roles["perimeter"] <= 0 || roles["infill"] <= 0 {
		t.Errorf("role breakdown incomplete: %v", roles)
	}
	if roles["perimeter"] > roles["infill"] {
		t.Errorf("solid interior should extrude more infill than perimeter: %v", roles)
	}
}
