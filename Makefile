GO ?= go

.PHONY: verify race bench build test

# Tier-1 verify: must stay green on every commit.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 verify: static analysis + the race detector over the parallel
# pipeline (quality matrix, slicer fan-out, tensile replicates).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Serial-vs-parallel wall time for the quality matrix.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkQualityMatrix' -benchtime 2x .
