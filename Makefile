GO ?= go

.PHONY: verify race bench benchdiff cover build test smoke smoke-cluster

# Tier-1 verify: must stay green on every commit.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 verify: static analysis + the race detector over the parallel
# pipeline (quality matrix, slicer fan-out, tensile replicates).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Serial-vs-parallel wall time for the quality matrix, the indexed-vs-
# naive slicer kernel comparison, plus the machine-readable
# BENCH_obfuscade.json artifact that the CI bench job diffs against the
# committed BENCH_baseline.json (scripts/benchdiff.go).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkQualityMatrix' -benchmem -benchtime 2x .
	$(GO) test -run '^$$' -bench 'BenchmarkSliceKernel|BenchmarkRasterize' -benchmem ./internal/slicer
	$(GO) run ./cmd/paperbench -exp bench -benchout BENCH_obfuscade.json

# Perf-regression gate: fails on >30% parallel-matrix wall-time
# regression or >30% slicer layers/s regression against the committed
# baseline. Re-baseline after an intentional perf change with:
#   make bench && cp BENCH_obfuscade.json BENCH_baseline.json
benchdiff:
	$(GO) run ./scripts -baseline BENCH_baseline.json -current BENCH_obfuscade.json -tolerance 0.30 -slicer-tolerance 0.30

# End-to-end smoke of the job service: boots `obfuscade serve` on a
# random port in a fresh process, submits two identical + one distinct
# job, and asserts exact cache hit/miss counters on /metrics plus a
# graceful SIGTERM drain (scripts/smoke_serve.sh).
smoke:
	./scripts/smoke_serve.sh

# Cluster smoke: a `-route-to` router over two shards in fresh
# processes — key-stable placement via per-shard /metrics, federated
# counter sums, cross-tier request/trace ID matching in the access
# logs, merged-trace parentage, failover after SIGKILLing a shard, and
# 429 + Retry-After shed pass-through (scripts/smoke_cluster.sh). Set
# CLUSTER_TRACE_OUT to keep the merged Chrome trace.
smoke-cluster:
	./scripts/smoke_cluster.sh

# Coverage floor over the observability, tracing, worker-pool, serving,
# sharding and stage-memo packages — the subsystems every parallel stage
# and the routing tier depend on.
COVER_FLOOR ?= 85
COVER_PKGS = ./internal/obs ./internal/parallel ./internal/trace ./internal/serve ./internal/shard ./internal/stego ./internal/memo
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out $(COVER_PKGS)
	@pct=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	awk -v pct="$$pct" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (pct + 0 < floor + 0) { printf("cover: FAIL: %.1f%% below floor %s%% ($(COVER_PKGS))\n", pct, floor); exit 1 } \
		printf("cover: OK: %.1f%% >= floor %s%% ($(COVER_PKGS))\n", pct, floor) }'
