// Command benchdiff is the CI perf-regression gate: it compares the
// BENCH_obfuscade.json artifact written by `make bench` (paperbench
// -exp bench) against the committed baseline and fails when the parallel
// quality-matrix wall time regresses beyond the tolerance.
//
// Usage:
//
//	go run ./scripts -baseline BENCH_baseline.json \
//	    -current BENCH_obfuscade.json [-tolerance 0.30] [-max-serial-ratio 1.25] \
//	    [-min-matrix-speedup 2.5] [-alloc-tolerance 0.30] \
//	    [-slicer-tolerance 0.30] [-throughput-tolerance 0.40] [-enforce-throughput] \
//	    [-require-multiproc] [-min-shard-scale 1.0] [-saturate-p99-tolerance 1.0]
//
// Eight gates run:
//
//  1. Regression: current parallel matrix wall time must not exceed
//     baseline * (1 + tolerance). Absolute wall times differ across
//     machines, which is why the tolerance is generous; re-baseline with
//     `make bench && cp BENCH_obfuscade.json BENCH_baseline.json` after an
//     intentional perf change.
//  2. Pool sanity (machine-independent): on a multi-core host the pool
//     must not run slower than the serial baseline by more than
//     -max-serial-ratio. Skipped with a warning when either report was
//     produced single-proc (GOMAXPROCS=1 or a 1-worker pool): a
//     "parallel" run on one processor is just a serial run, so its
//     speedup carries no signal. Under -require-multiproc (the default
//     when the CI env var is set) a single-proc report is itself a
//     failure — the CI bench environment promises multi-proc runs, so a
//     skip there means the environment regressed. On multi-proc reports
//     the pool must additionally reach -min-matrix-speedup over the
//     serial run (machine-independent: both columns come from the same
//     report) — the shared-geometry memoization and zero-alloc hot
//     paths exist to keep this floor reachable. The floor itself skips
//     (with a warning) when min(num_cpu, workers) cannot physically
//     reach it: GOMAXPROCS can be env-pinned above the core count, so
//     num_cpu is the capacity signal, as in the shard-scale gate.
//     2b. Allocation budget (warn-only): matrix allocs/key must not grow
//     more than -alloc-tolerance over the baseline. Warn-only because
//     allocation counts shift with Go runtime versions; the warning is
//     the review prompt, the re-baseline is the decision.
//  3. Slicer throughput (enforced): layers/s must not drop more than
//     -slicer-tolerance below the baseline. The indexed slicing kernels
//     make this the one throughput number CI guards strictly.
//  4. Throughput: mech replicates/s must not drop more than
//     -throughput-tolerance below the baseline. Warn-only by default
//     (throughput is noisier than wall time on shared CI runners);
//     -enforce-throughput promotes the warnings to failures.
//  5. Shard scale (machine-independent): the two-shard saturation
//     topology must sustain more than -min-shard-scale times the
//     one-shard req/s within the same report. Each shard is pinned to
//     GOMAXPROCS=1 by paperbench, so this holds on any >=2-CPU host;
//     skipped with a warning when the current host has one CPU.
//  6. Saturation tail latency: the two-shard warm p99 must not exceed
//     baseline * (1 + -saturate-p99-tolerance). Generous by default —
//     sub-10ms tails are noisy across machines.
//
// Exit code 0 when the enforced gates pass, 1 on a regression or
// unreadable input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchReport struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Matrix     struct {
		Keys            int     `json:"keys"`
		SerialSeconds   float64 `json:"serial_seconds"`
		ParallelSeconds float64 `json:"parallel_seconds"`
		Workers         int     `json:"workers"`
		Speedup         float64 `json:"speedup"`
		AllocsPerKey    int64   `json:"allocs_per_key"`
		BytesPerKey     int64   `json:"bytes_per_key"`
	} `json:"matrix"`
	Stages struct {
		TessellateSeconds float64 `json:"tessellate_seconds"`
		VoxelSeconds      float64 `json:"voxel_seconds"`
	} `json:"stages"`
	Slicer struct {
		Layers            int64   `json:"layers"`
		LayersPerSecond   float64 `json:"layers_per_second"`
		IndexBuildSeconds float64 `json:"index_build_seconds"`
	} `json:"slicer"`
	Mech struct {
		Replicates          int64   `json:"replicates"`
		ReplicatesPerSecond float64 `json:"replicates_per_second"`
	} `json:"mech"`
	NumCPU int `json:"num_cpu"`
	Serve  struct {
		Saturation struct {
			Keys        int         `json:"keys"`
			Requests    int         `json:"requests"`
			Concurrency int         `json:"concurrency"`
			OneShard    satTopology `json:"one_shard"`
			TwoShard    satTopology `json:"two_shard"`
		} `json:"saturation"`
	} `json:"serve"`
}

// satTopology mirrors paperbench's per-topology saturation measurement.
type satTopology struct {
	Shards       int     `json:"shards"`
	ColdSeconds  float64 `json:"cold_seconds"`
	SustainedRPS float64 `json:"sustained_rps"`
	P50Millis    float64 `json:"p50_ms"`
	P99Millis    float64 `json:"p99_ms"`
	HedgeFired   int64   `json:"hedge_fired"`
}

// gateOpts are the thresholds the gates evaluate against.
type gateOpts struct {
	// Tolerance is the allowed fractional wall-time regression of the
	// parallel matrix.
	Tolerance float64
	// MaxSerialRatio bounds parallel/serial wall time on multi-core hosts.
	MaxSerialRatio float64
	// MinMatrixSpeedup is the parallel-over-serial speedup floor the
	// matrix must reach on multi-proc reports; 0 disables the gate.
	// Machine-independent like MaxSerialRatio: both columns come from
	// the same report.
	MinMatrixSpeedup float64
	// AllocTolerance is the allowed fractional growth of matrix
	// allocs/key over the baseline. Always warn-only: allocation counts
	// move with Go runtime versions, so a trip is a review prompt, not a
	// hard failure.
	AllocTolerance float64
	// SlicerTolerance is the allowed fractional drop in slicer layers/s;
	// unlike ThroughputTolerance this gate always fails on regression.
	SlicerTolerance float64
	// ThroughputTolerance is the allowed fractional drop in mech
	// replicates/s.
	ThroughputTolerance float64
	// EnforceThroughput promotes throughput warnings to failures.
	EnforceThroughput bool
	// RequireMultiProc turns a single-proc speedup-gate skip into a
	// failure: the CI bench environment pins GOMAXPROCS>1, so a
	// single-proc report there means the environment regressed.
	RequireMultiProc bool
	// MinShardScale is the factor by which the two-shard saturation
	// topology must beat the one-shard one on sustained req/s.
	MinShardScale float64
	// SaturateP99Tolerance is the allowed fractional regression of the
	// two-shard warm p99 versus the baseline.
	SaturateP99Tolerance float64
}

// gateResult is the outcome of one evaluate pass: failures gate the exit
// code, warnings are advisory.
type gateResult struct {
	Failures []string
	Warnings []string
}

func (r gateResult) ok() bool { return len(r.Failures) == 0 }

// evaluate runs every gate against the two reports and returns the
// failures and warnings. Pure — no I/O — so the CI policy is unit
// testable.
func evaluate(base, cur benchReport, opts gateOpts) gateResult {
	var res gateResult
	// A zero/absent baseline metric carries no signal: a ratio against it
	// is NaN, a limit derived from it is 0 (an automatic false-fail for
	// wall times, a silent false-pass for throughputs). New metrics start
	// life with no baseline — "pin, don't gate": warn that the current
	// value becomes the reference at the next re-baseline, and skip the
	// comparison.
	pin := func(name string, curVal float64, unit string) {
		if curVal <= 0 {
			return // not measured on either side: nothing to pin or gate
		}
		res.Warnings = append(res.Warnings, fmt.Sprintf(
			"%s has no baseline (zero/absent): pinning current %.3f%s as the new reference, not gating; re-baseline to start enforcing",
			name, curVal, unit))
	}
	if base.Matrix.ParallelSeconds <= 0 {
		pin("parallel matrix wall", cur.Matrix.ParallelSeconds, "s")
	} else if limit := base.Matrix.ParallelSeconds * (1 + opts.Tolerance); cur.Matrix.ParallelSeconds > limit {
		res.Failures = append(res.Failures, fmt.Sprintf(
			"parallel matrix wall %.3fs exceeds baseline %.3fs + %.0f%% tolerance (limit %.3fs)",
			cur.Matrix.ParallelSeconds, base.Matrix.ParallelSeconds, 100*opts.Tolerance, limit))
	}
	// The speedup comparison needs both reports to come from genuinely
	// parallel runs: with GOMAXPROCS=1 or a 1-worker pool the "parallel"
	// matrix is a serial run wearing a different label, and its speedup
	// (or lack of one) is meaningless. Skip loudly rather than fail or
	// silently pass.
	singleProc := func(r benchReport) bool {
		return r.GOMAXPROCS <= 1 || r.Matrix.Workers == 1
	}
	if singleProc(base) || singleProc(cur) {
		msg := fmt.Sprintf(
			"pool-sanity (speedup) gate skipped: single-proc report (baseline gomaxprocs=%d workers=%d, current gomaxprocs=%d workers=%d)",
			base.GOMAXPROCS, base.Matrix.Workers, cur.GOMAXPROCS, cur.Matrix.Workers)
		if opts.RequireMultiProc {
			res.Failures = append(res.Failures,
				"multi-proc required but "+msg+"; fix the bench environment (set GOMAXPROCS>1) rather than skipping")
		} else {
			res.Warnings = append(res.Warnings, msg)
		}
	} else {
		if cur.Matrix.ParallelSeconds > cur.Matrix.SerialSeconds*opts.MaxSerialRatio {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"parallel matrix (%.3fs) slower than %.2fx the serial run (%.3fs) on %d CPUs",
				cur.Matrix.ParallelSeconds, opts.MaxSerialRatio, cur.Matrix.SerialSeconds, cur.GOMAXPROCS))
		}
		// Speedup floor: the memoized tessellation/index sharing plus the
		// pooled hot paths are supposed to keep the matrix compute-bound,
		// so a multi-proc pool that cannot clear the floor means the
		// parallel path regressed even if absolute wall times still fit
		// the cross-machine tolerance. The ideal speedup is bounded by
		// min(CPUs, workers) — GOMAXPROCS can be env-pinned above the
		// physical core count (the baseline-pinning recipe does exactly
		// that), so num_cpu is the honest capacity signal: a host whose
		// bound sits below the floor skips with a warning instead of
		// failing a target it cannot physically reach.
		if opts.MinMatrixSpeedup > 0 {
			bound := cur.NumCPU
			if cur.Matrix.Workers > 0 && cur.Matrix.Workers < bound {
				bound = cur.Matrix.Workers
			}
			switch {
			case float64(bound) < opts.MinMatrixSpeedup:
				res.Warnings = append(res.Warnings, fmt.Sprintf(
					"matrix speedup floor skipped: min(%d CPUs, %d workers) cannot reach %.2fx",
					cur.NumCPU, cur.Matrix.Workers, opts.MinMatrixSpeedup))
			case cur.Matrix.Speedup < opts.MinMatrixSpeedup:
				res.Failures = append(res.Failures, fmt.Sprintf(
					"matrix speedup %.2fx below the %.2fx floor (serial %.3fs, parallel %.3fs, %d workers on %d CPUs)",
					cur.Matrix.Speedup, opts.MinMatrixSpeedup,
					cur.Matrix.SerialSeconds, cur.Matrix.ParallelSeconds,
					cur.Matrix.Workers, cur.NumCPU))
			}
		}
	}
	// Allocation budget: warn-only by design (see the package comment) —
	// the zero-alloc hot paths are guarded by a prompt to look, not a
	// gate that blocks unrelated work on a runtime upgrade.
	if cur.Matrix.AllocsPerKey > 0 {
		if base.Matrix.AllocsPerKey <= 0 {
			pin("matrix allocs/key", float64(cur.Matrix.AllocsPerKey), "")
		} else if limit := float64(base.Matrix.AllocsPerKey) * (1 + opts.AllocTolerance); float64(cur.Matrix.AllocsPerKey) > limit {
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"matrix allocs/key %d exceeds baseline %d + %.0f%% tolerance (limit %.0f); run paperbench -memprofile to find the new allocation site",
				cur.Matrix.AllocsPerKey, base.Matrix.AllocsPerKey, 100*opts.AllocTolerance, limit))
		}
	}
	// Slicer layers/s is an enforced gate: the indexed slicing kernels
	// are a deliverable this repository documents, so losing more than
	// the tolerance fails CI outright.
	if base.Slicer.LayersPerSecond <= 0 {
		pin("slicer layers/s", cur.Slicer.LayersPerSecond, "")
	} else {
		floor := base.Slicer.LayersPerSecond * (1 - opts.SlicerTolerance)
		if cur.Slicer.LayersPerSecond < floor {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"slicer layers %.1f/s below baseline %.1f/s - %.0f%% tolerance (floor %.1f/s)",
				cur.Slicer.LayersPerSecond, base.Slicer.LayersPerSecond,
				100*opts.SlicerTolerance, floor))
		}
	}
	throughput := func(name string, baseRate, curRate float64) {
		if baseRate <= 0 {
			pin(name, curRate, "/s")
			return
		}
		floor := baseRate * (1 - opts.ThroughputTolerance)
		if curRate >= floor {
			return
		}
		msg := fmt.Sprintf("%s %.1f/s below baseline %.1f/s - %.0f%% tolerance (floor %.1f/s)",
			name, curRate, baseRate, 100*opts.ThroughputTolerance, floor)
		if opts.EnforceThroughput {
			res.Failures = append(res.Failures, msg)
		} else {
			res.Warnings = append(res.Warnings, msg)
		}
	}
	throughput("mech replicates", base.Mech.ReplicatesPerSecond, cur.Mech.ReplicatesPerSecond)

	// Shard-scale gate: compares the two topologies inside the *current*
	// report, so it is machine-independent — both columns ran on the same
	// host minutes apart. Each shard is GOMAXPROCS=1-pinned, so the only
	// way two shards fail to beat one on a multi-CPU host is a routing or
	// serving regression.
	sat := cur.Serve.Saturation
	switch {
	case sat.TwoShard.SustainedRPS <= 0 || sat.OneShard.SustainedRPS <= 0:
		if opts.RequireMultiProc {
			res.Failures = append(res.Failures,
				"shard-scale gate: current report carries no saturation data; the CI bench must run paperbench -exp bench with the serve.saturation section")
		} else {
			res.Warnings = append(res.Warnings,
				"shard-scale gate skipped: no saturation data in the current report")
		}
	case cur.NumCPU < 2:
		res.Warnings = append(res.Warnings, fmt.Sprintf(
			"shard-scale gate skipped: host has %d CPU; two single-proc shards cannot outrun one", cur.NumCPU))
	case sat.TwoShard.SustainedRPS <= sat.OneShard.SustainedRPS*opts.MinShardScale:
		res.Failures = append(res.Failures, fmt.Sprintf(
			"two-shard saturation %.0f req/s does not beat one shard %.0f req/s x %.2f (scale %.2fx)",
			sat.TwoShard.SustainedRPS, sat.OneShard.SustainedRPS, opts.MinShardScale,
			sat.TwoShard.SustainedRPS/sat.OneShard.SustainedRPS))
	}

	// Saturation tail-latency gate: cross-machine like the wall-time
	// gates, hence the generous default tolerance.
	if basep99 := base.Serve.Saturation.TwoShard.P99Millis; basep99 <= 0 && sat.TwoShard.P99Millis > 0 {
		pin("two-shard warm p99", sat.TwoShard.P99Millis, "ms")
	} else if basep99 > 0 && sat.TwoShard.P99Millis > 0 {
		limit := basep99 * (1 + opts.SaturateP99Tolerance)
		if sat.TwoShard.P99Millis > limit {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"two-shard warm p99 %.2fms exceeds baseline %.2fms + %.0f%% tolerance (limit %.2fms)",
				sat.TwoShard.P99Millis, basep99, 100*opts.SaturateP99Tolerance, limit))
		}
	}
	return res
}

func load(path string) (benchReport, error) {
	var rep benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != 1 {
		return rep, fmt.Errorf("%s: unsupported schema %d", path, rep.Schema)
	}
	return rep, nil
}

func pct(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (cur - base) / base
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	current := flag.String("current", "BENCH_obfuscade.json", "freshly measured report")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional wall-time regression of the parallel matrix")
	maxSerialRatio := flag.Float64("max-serial-ratio", 1.25, "parallel matrix may be at most this multiple of the serial wall time (multi-core hosts only)")
	minMatrixSpeedup := flag.Float64("min-matrix-speedup", 2.5,
		"parallel matrix must reach this speedup over serial on multi-proc reports (0 disables)")
	allocTol := flag.Float64("alloc-tolerance", 0.30,
		"allowed fractional growth of matrix allocs/key vs baseline (warn-only)")
	slicerTol := flag.Float64("slicer-tolerance", 0.30, "allowed fractional drop in slicer layers/s (always enforced)")
	throughputTol := flag.Float64("throughput-tolerance", 0.40, "allowed fractional drop in mech replicates/s")
	enforceThroughput := flag.Bool("enforce-throughput", false, "fail (instead of warn) when a throughput gate trips")
	requireMultiProc := flag.Bool("require-multiproc", os.Getenv("CI") != "",
		"fail (instead of warn) when a report is single-proc or lacks saturation data (default: on when $CI is set)")
	minShardScale := flag.Float64("min-shard-scale", 1.0,
		"two-shard saturation req/s must beat one-shard by this factor (>=2-CPU hosts only)")
	satP99Tol := flag.Float64("saturate-p99-tolerance", 1.0,
		"allowed fractional regression of the two-shard warm p99 vs baseline")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	fmt.Printf("%-28s %12s %12s %9s\n", "metric", "baseline", "current", "delta")
	row := func(name string, b, c float64, unit string) {
		fmt.Printf("%-28s %10.3f%s %10.3f%s %+8.1f%%\n", name, b, unit, c, unit, pct(c, b))
	}
	row("matrix serial wall", base.Matrix.SerialSeconds, cur.Matrix.SerialSeconds, "s")
	row("matrix parallel wall", base.Matrix.ParallelSeconds, cur.Matrix.ParallelSeconds, "s")
	row("matrix speedup", base.Matrix.Speedup, cur.Matrix.Speedup, "x")
	row("matrix allocs/key", float64(base.Matrix.AllocsPerKey), float64(cur.Matrix.AllocsPerKey), " ")
	row("matrix MB alloc/key", float64(base.Matrix.BytesPerKey)/1e6, float64(cur.Matrix.BytesPerKey)/1e6, " ")
	row("stage tessellate", base.Stages.TessellateSeconds, cur.Stages.TessellateSeconds, "s")
	row("stage voxel", base.Stages.VoxelSeconds, cur.Stages.VoxelSeconds, "s")
	row("slicer layers/s", base.Slicer.LayersPerSecond, cur.Slicer.LayersPerSecond, " ")
	row("slicer index build", base.Slicer.IndexBuildSeconds, cur.Slicer.IndexBuildSeconds, "s")
	row("mech replicates/s", base.Mech.ReplicatesPerSecond, cur.Mech.ReplicatesPerSecond, " ")
	row("saturate 1-shard req/s", base.Serve.Saturation.OneShard.SustainedRPS, cur.Serve.Saturation.OneShard.SustainedRPS, " ")
	row("saturate 2-shard req/s", base.Serve.Saturation.TwoShard.SustainedRPS, cur.Serve.Saturation.TwoShard.SustainedRPS, " ")
	row("saturate 2-shard p99", base.Serve.Saturation.TwoShard.P99Millis, cur.Serve.Saturation.TwoShard.P99Millis, "ms")

	res := evaluate(base, cur, gateOpts{
		Tolerance:            *tolerance,
		MaxSerialRatio:       *maxSerialRatio,
		MinMatrixSpeedup:     *minMatrixSpeedup,
		AllocTolerance:       *allocTol,
		SlicerTolerance:      *slicerTol,
		ThroughputTolerance:  *throughputTol,
		EnforceThroughput:    *enforceThroughput,
		RequireMultiProc:     *requireMultiProc,
		MinShardScale:        *minShardScale,
		SaturateP99Tolerance: *satP99Tol,
	})
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "benchdiff: WARN:", w)
	}
	for _, f := range res.Failures {
		fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", f)
	}
	if !res.ok() {
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK (parallel matrix %.3fs within %.0f%% of baseline %.3fs)\n",
		cur.Matrix.ParallelSeconds, 100**tolerance, base.Matrix.ParallelSeconds)
}
