#!/usr/bin/env bash
# Smoke test for the obfuscation job service: boot `obfuscade serve` on
# a random port, submit two identical and one distinct job, and assert
#
#   - the identical pair reports one miss then one hit, with the same
#     job id and STL digest, and the served STL bytes hash to that digest
#   - /metrics exposes exactly one cache hit and two misses
#   - SIGTERM drains gracefully (exit 0) and flushes one provenance
#     manifest line per completed job
#
# CI runs this in a fresh process, so the exact /metrics counter values
# are assertable (in-process tests share the global registry and cannot
# do this).
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "smoke_serve: FAIL: $*" >&2; exit 1; }

go build -o "$workdir/obfuscade" ./cmd/obfuscade

"$workdir/obfuscade" serve \
    -addr 127.0.0.1:0 \
    -addr-file "$workdir/addr" \
    -manifest-out "$workdir/manifests.ndjson" &
server_pid=$!

for _ in $(seq 1 100); do
    [ -s "$workdir/addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done
[ -s "$workdir/addr" ] || fail "server never wrote its address"
base="http://$(cat "$workdir/addr" | tr -d '[:space:]')"

submit() { curl -sf -X POST -H 'Content-Type: application/json' -d "$1" "$base/jobs?wait=1"; }

r1="$(submit '{"seed": 1}')"
r2="$(submit '{"seed": 1}')"
r3="$(submit '{"seed": 2, "resolution": "fine"}')"

for name in r1 r2 r3; do
    state="$(echo "${!name}" | jq -r .state)"
    [ "$state" = done ] || fail "$name state = $state: ${!name}"
done

[ "$(echo "$r1" | jq -r .outcome)" = miss ] || fail "first identical job must miss: $r1"
[ "$(echo "$r2" | jq -r .outcome)" = hit ]  || fail "second identical job must hit: $r2"
[ "$(echo "$r3" | jq -r .outcome)" = miss ] || fail "distinct job must miss: $r3"

sha1="$(echo "$r1" | jq -r .stl_sha256)"
sha2="$(echo "$r2" | jq -r .stl_sha256)"
[ -n "$sha1" ] && [ "$sha1" = "$sha2" ] || fail "identical jobs served different digests: $sha1 vs $sha2"
[ "$(echo "$r1" | jq -r .id)" = "$(echo "$r2" | jq -r .id)" ] || fail "identical jobs got different ids"

# The served STL bytes hash to the reported digest.
id1="$(echo "$r1" | jq -r .id)"
curl -sf "$base/jobs/$id1/stl" -o "$workdir/job1.stl"
served_sha="$(sha256sum "$workdir/job1.stl" | cut -d' ' -f1)"
[ "$served_sha" = "$sha1" ] || fail "served STL hashes to $served_sha, reported $sha1"

# Fresh process: the cache counters on /metrics are exact.
metrics="$(curl -sf "$base/metrics")"
echo "$metrics" | grep -qx 'obfuscade_cache_hits_total 1' \
    || fail "expected one cache hit:$(echo; echo "$metrics" | grep ^obfuscade_cache)"
echo "$metrics" | grep -qx 'obfuscade_cache_misses_total 2' \
    || fail "expected two cache misses:$(echo; echo "$metrics" | grep ^obfuscade_cache)"

# Graceful drain: SIGTERM exits 0 and flushes both completed manifests.
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
    fail "server did not exit cleanly on SIGTERM"
fi
server_pid=""

lines="$(wc -l < "$workdir/manifests.ndjson")"
[ "$lines" -eq 2 ] || fail "manifest lines = $lines, want 2"
while IFS= read -r line; do
    echo "$line" | jq -e .stl_sha256 >/dev/null || fail "bad manifest line: $line"
done < "$workdir/manifests.ndjson"

echo "smoke_serve: OK (1 hit, 2 misses, digest $sha1, 2 manifests flushed)"
