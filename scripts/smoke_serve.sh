#!/usr/bin/env bash
# Smoke test for the obfuscation job service: boot `obfuscade serve` on
# a random port with a persistent cache directory, exercise it, restart
# it on the same directory, and assert
#
#   - the identical pair reports one miss then one hit, with the same
#     job id and STL digest, and the served STL bytes hash to that digest
#   - /metrics exposes exactly one cache hit and two misses
#   - one POST /jobs/batch coalesces a quality-matrix sweep: four
#     distinct jobs, all done, in submission order
#   - SIGTERM drains gracefully (exit 0) and flushes one provenance
#     manifest line per completed job (2 singles + 4 batch = 6)
#   - a fresh process on the same -cache-dir serves the original request
#     from disk: outcome disk_hit, identical digest, exactly one
#     obfuscade_cache_disk_hits_total and zero pipeline completions
#   - past -max-queue the server sheds with 429 + Retry-After while
#     still serving admitted work
#   - POST /sanitize is content-addressed and cached like jobs: the
#     identical upload pair is miss then hit with exact counters, the
#     artifact reads back by digest, a restart serves it as a disk_hit
#     without recomputing, and a full admission queue sheds a fresh
#     sanitize with 429 while cached addresses keep answering
#
# CI runs this in a fresh process, so the exact /metrics counter values
# are assertable (in-process tests share the global registry and cannot
# do this).
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
server_pid=""
# A single trap owns every background process — the server plus any
# still-running burst curls — so a mid-script assertion failure
# (set -e) never leaks one. Waiting lets the server's drain finish
# before the cache directory is deleted out from under it, or rm races
# the journal compaction.
cleanup() {
    local running
    running="$(jobs -pr)"
    if [ -n "$running" ]; then
        # shellcheck disable=SC2086
        kill $running 2>/dev/null || true
    fi
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "smoke_serve: FAIL: $*" >&2; exit 1; }

go build -o "$workdir/obfuscade" ./cmd/obfuscade

start_server() { # start_server <addr-file> <extra flags...>
    local addr_file="$1"; shift
    "$workdir/obfuscade" serve \
        -addr 127.0.0.1:0 \
        -addr-file "$addr_file" \
        -cache-dir "$workdir/cache" \
        "$@" &
    server_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$addr_file" ] && break
        kill -0 "$server_pid" 2>/dev/null || fail "server died during startup"
        sleep 0.1
    done
    [ -s "$addr_file" ] || fail "server never wrote its address"
    base="http://$(tr -d '[:space:]' < "$addr_file")"
}

stop_server() {
    kill -TERM "$server_pid"
    if ! wait "$server_pid"; then
        fail "server did not exit cleanly on SIGTERM"
    fi
    server_pid=""
}

submit() { curl -sf -X POST -H 'Content-Type: application/json' -d "$1" "$base/jobs?wait=1"; }

# ---- run 1: populate the cache, batch sweep, graceful drain ----------

start_server "$workdir/addr1" -manifest-out "$workdir/manifests.ndjson"

r1="$(submit '{"seed": 1}')"
r2="$(submit '{"seed": 1}')"
r3="$(submit '{"seed": 2, "resolution": "fine"}')"

for name in r1 r2 r3; do
    state="$(echo "${!name}" | jq -r .state)"
    [ "$state" = done ] || fail "$name state = $state: ${!name}"
done

[ "$(echo "$r1" | jq -r .outcome)" = miss ] || fail "first identical job must miss: $r1"
[ "$(echo "$r2" | jq -r .outcome)" = hit ]  || fail "second identical job must hit: $r2"
[ "$(echo "$r3" | jq -r .outcome)" = miss ] || fail "distinct job must miss: $r3"

sha1="$(echo "$r1" | jq -r .stl_sha256)"
sha2="$(echo "$r2" | jq -r .stl_sha256)"
[ -n "$sha1" ] && [ "$sha1" = "$sha2" ] || fail "identical jobs served different digests: $sha1 vs $sha2"
[ "$(echo "$r1" | jq -r .id)" = "$(echo "$r2" | jq -r .id)" ] || fail "identical jobs got different ids"

# The served STL bytes hash to the reported digest.
id1="$(echo "$r1" | jq -r .id)"
curl -sf "$base/jobs/$id1/stl" -o "$workdir/job1.stl"
served_sha="$(sha256sum "$workdir/job1.stl" | cut -d' ' -f1)"
[ "$served_sha" = "$sha1" ] || fail "served STL hashes to $served_sha, reported $sha1"

# Fresh process: the cache counters on /metrics are exact.
metrics="$(curl -sf "$base/metrics")"
echo "$metrics" | grep -qx 'obfuscade_cache_hits_total 1' \
    || fail "expected one cache hit:$(echo; echo "$metrics" | grep ^obfuscade_cache)"
echo "$metrics" | grep -qx 'obfuscade_cache_misses_total 2' \
    || fail "expected two cache misses:$(echo; echo "$metrics" | grep ^obfuscade_cache)"

# One batch request sweeps a quality matrix: four distinct jobs come
# back done, in submission order, each with an artifact digest.
batch="$(curl -sf -X POST -H 'Content-Type: application/json' -d '{"jobs": [
    {"seed": 3, "resolution": "coarse", "orientation": "x-y"},
    {"seed": 3, "resolution": "coarse", "orientation": "x-z"},
    {"seed": 3, "resolution": "fine", "orientation": "x-y"},
    {"seed": 3, "resolution": "fine", "orientation": "x-z"}
]}' "$base/jobs/batch")"
[ "$(echo "$batch" | jq '.results | length')" -eq 4 ] || fail "batch results: $batch"
[ "$(echo "$batch" | jq '[.results[] | select(.state == "done")] | length')" -eq 4 ] \
    || fail "batch jobs not all done: $batch"
[ "$(echo "$batch" | jq '[.results[].id] | unique | length')" -eq 4 ] \
    || fail "batch sweep must produce four distinct jobs: $batch"

# POST /sanitize destroys the stego channels of a raw STL body, cached
# by content address: the identical upload pair is one miss then one
# hit, the artifact reads back by its digest, and the exact sanitize
# counters show one compute for two requests.
san1="$(curl -sf -X POST --data-binary "@$workdir/job1.stl" "$base/sanitize")"
san2="$(curl -sf -X POST --data-binary "@$workdir/job1.stl" "$base/sanitize")"
[ "$(echo "$san1" | jq -r .outcome)" = miss ] || fail "first sanitize must miss: $san1"
[ "$(echo "$san2" | jq -r .outcome)" = hit ]  || fail "second sanitize must hit: $san2"
san_id="$(echo "$san1" | jq -r .id)"
san_sha="$(echo "$san1" | jq -r .stl_sha256)"
[ "$(echo "$san2" | jq -r .id)" = "$san_id" ] || fail "identical uploads got different addresses"
[ "$(echo "$san2" | jq -r .stl_sha256)" = "$san_sha" ] || fail "identical uploads got different digests"
echo "$san1" | jq -e .report.before >/dev/null || fail "sanitize reply carries no detection report: $san1"

curl -sf "$base/sanitize/$san_id/stl" -o "$workdir/sanitized.stl"
got_sha="$(sha256sum "$workdir/sanitized.stl" | cut -d' ' -f1)"
[ "$got_sha" = "$san_sha" ] || fail "sanitized STL hashes to $got_sha, reported $san_sha"

metrics="$(curl -sf "$base/metrics")"
echo "$metrics" | grep -qx 'obfuscade_serve_sanitize_requests_total 2' \
    || fail "expected two sanitize requests:$(echo; echo "$metrics" | grep ^obfuscade_serve_sanitize)"
echo "$metrics" | grep -qx 'obfuscade_serve_sanitize_completed_total 1' \
    || fail "expected one sanitize compute:$(echo; echo "$metrics" | grep ^obfuscade_serve_sanitize)"

# Keep a never-sanitized STL around for run 2's deterministic shed.
id3="$(echo "$r3" | jq -r .id)"
curl -sf "$base/jobs/$id3/stl" -o "$workdir/job3.stl"

# Graceful drain: SIGTERM exits 0 and flushes every completed manifest
# (2 single-submission runs + 4 batch runs).
stop_server

lines="$(wc -l < "$workdir/manifests.ndjson")"
[ "$lines" -eq 6 ] || fail "manifest lines = $lines, want 6"
while IFS= read -r line; do
    echo "$line" | jq -e .stl_sha256 >/dev/null || fail "bad manifest line: $line"
done < "$workdir/manifests.ndjson"

# ---- run 2: restart-warm from disk, then shed past -max-queue --------

start_server "$workdir/addr2" -max-queue 1

w1="$(submit '{"seed": 1}')"
[ "$(echo "$w1" | jq -r .outcome)" = disk_hit ] \
    || fail "post-restart job must come from disk: $w1"
[ "$(echo "$w1" | jq -r .stl_sha256)" = "$sha1" ] \
    || fail "restart-warm digest drifted: $w1"

# Fresh process again: exactly one disk hit, and the pipeline never ran
# (zero-valued counters are omitted from the export, so a completions
# counter merely being present would mean a pipeline run).
metrics="$(curl -sf "$base/metrics")"
echo "$metrics" | grep -qx 'obfuscade_cache_disk_hits_total 1' \
    || fail "expected one disk hit:$(echo; echo "$metrics" | grep -E '^obfuscade_(cache|serve)')"
if echo "$metrics" | grep -q '^obfuscade_serve_jobs_completed_total'; then
    fail "restart-warm must not run the pipeline:$(echo; echo "$metrics" | grep ^obfuscade_serve)"
fi

# Sanitize artifacts are restart-warm too: the run-1 upload comes back
# from the disk tier without re-sanitizing, same address and digest.
sw="$(curl -sf -X POST --data-binary "@$workdir/job1.stl" "$base/sanitize")"
[ "$(echo "$sw" | jq -r .outcome)" = disk_hit ] || fail "post-restart sanitize must come from disk: $sw"
[ "$(echo "$sw" | jq -r .id)" = "$san_id" ] || fail "restart-warm sanitize address drifted: $sw"
[ "$(echo "$sw" | jq -r .stl_sha256)" = "$san_sha" ] || fail "restart-warm sanitize digest drifted: $sw"
metrics="$(curl -sf "$base/metrics")"
echo "$metrics" | grep -qx 'obfuscade_cache_disk_hits_total 2' \
    || fail "expected two disk hits after warm sanitize:$(echo; echo "$metrics" | grep ^obfuscade_cache)"
if echo "$metrics" | grep -q '^obfuscade_serve_sanitize_completed_total'; then
    fail "restart-warm sanitize must not recompute:$(echo; echo "$metrics" | grep ^obfuscade_serve_sanitize)"
fi
curl -sf "$base/sanitize/$san_id/stl" -o "$workdir/sanitized2.stl"
[ "$(sha256sum "$workdir/sanitized2.stl" | cut -d' ' -f1)" = "$san_sha" ] \
    || fail "restart-warm sanitized artifact drifted"

# Deterministic sanitize shed: an admitted async job occupies the single
# -max-queue slot (admission counts at submit, before the pipeline even
# starts), so a fresh sanitize body is shed with 429 + Retry-After while
# the warm address above kept answering. Once the job drains, the same
# body is admitted and sanitized.
slow="$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"seed": 99, "resolution": "fine"}' "$base/jobs")"
slow_id="$(echo "$slow" | jq -r .id)"
[ -n "$slow_id" ] || fail "async submit returned no id: $slow"
san_code="$(curl -s -o "$workdir/san_shed_body" -D "$workdir/san_shed_hdr" -w '%{http_code}' \
    -X POST --data-binary "@$workdir/job3.stl" "$base/sanitize")"
[ "$san_code" = 429 ] || fail "sanitize against a full queue: status $san_code: $(cat "$workdir/san_shed_body")"
grep -qi '^Retry-After:' "$workdir/san_shed_hdr" \
    || fail "shed sanitize without Retry-After: $(cat "$workdir/san_shed_hdr")"
for _ in $(seq 1 100); do
    [ "$(curl -sf "$base/jobs/$slow_id" | jq -r .state)" = done ] && break
    sleep 0.1
done
[ "$(curl -sf "$base/jobs/$slow_id" | jq -r .state)" = done ] || fail "seed-99 job never finished"
san3="$(curl -sf -X POST --data-binary "@$workdir/job3.stl" "$base/sanitize")"
[ "$(echo "$san3" | jq -r .outcome)" = miss ] || fail "post-drain sanitize must run: $san3"

# Past -max-queue 1, a concurrent burst of distinct jobs sheds: at
# least one 429 carrying Retry-After, while at least one job is served.
burst_pids=()
for i in $(seq 1 8); do
    curl -s -o "$workdir/shed_body_$i" -D "$workdir/shed_hdr_$i" \
        -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
        -d "{\"seed\": $((100 + i))}" "$base/jobs?wait=1" > "$workdir/shed_code_$i" &
    burst_pids+=($!)
done
wait "${burst_pids[@]}"
shed=0 served=0
for i in $(seq 1 8); do
    code="$(cat "$workdir/shed_code_$i")"
    case "$code" in
    429)
        grep -qi '^Retry-After:' "$workdir/shed_hdr_$i" \
            || fail "429 without Retry-After: $(cat "$workdir/shed_hdr_$i")"
        shed=$((shed + 1))
        ;;
    200) served=$((served + 1)) ;;
    *) fail "burst job $i: unexpected status $code: $(cat "$workdir/shed_body_$i")" ;;
    esac
done
[ "$shed" -ge 1 ] || fail "burst of 8 against -max-queue 1 shed nothing"
[ "$served" -ge 1 ] || fail "shedding served nothing at all"

# The shed counter surfaced on /metrics and agrees with the 429s (the
# burst's plus the one deterministic sanitize shed above).
shed_metric="$(curl -sf "$base/metrics" | awk '/^obfuscade_serve_shed_total/ {print $2}')"
[ "${shed_metric:-0}" -eq "$((shed + 1))" ] \
    || fail "serve.shed counter = ${shed_metric:-absent}, observed $((shed + 1)) 429s"

stop_server

echo "smoke_serve: OK (1 hit, 2 misses, 6 manifests, restart-warm disk_hit + sanitize disk_hit, $((shed + 1)) shed / $served served)"
