package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(parallel, serial float64, procs int, layersPS, repsPS float64) benchReport {
	var r benchReport
	r.Schema = 1
	r.GOMAXPROCS = procs
	r.Matrix.SerialSeconds = serial
	r.Matrix.ParallelSeconds = parallel
	r.Slicer.LayersPerSecond = layersPS
	r.Mech.ReplicatesPerSecond = repsPS
	return r
}

var defaultOpts = gateOpts{Tolerance: 0.30, MaxSerialRatio: 1.25, ThroughputTolerance: 0.40}

func TestEvaluatePasses(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.2, 4.1, 8, 900, 480)
	res := evaluate(base, cur, defaultOpts)
	if !res.ok() || len(res.Warnings) != 0 {
		t.Fatalf("want clean pass, got failures=%v warnings=%v", res.Failures, res.Warnings)
	}
}

func TestEvaluateWallTimeRegression(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.5, 4.0, 8, 1000, 500) // 50% > 30% tolerance
	res := evaluate(base, cur, defaultOpts)
	if res.ok() {
		t.Fatal("want wall-time failure, got pass")
	}
	if !strings.Contains(res.Failures[0], "parallel matrix wall") {
		t.Fatalf("unexpected failure: %q", res.Failures[0])
	}
}

func TestEvaluateSerialRatioGate(t *testing.T) {
	base := report(10.0, 4.0, 8, 1000, 500)
	cur := report(6.0, 4.0, 8, 1000, 500) // parallel 1.5x serial > 1.25x
	res := evaluate(base, cur, defaultOpts)
	if res.ok() {
		t.Fatal("want serial-ratio failure, got pass")
	}
	// Same shape on a single-core host is skipped.
	cur.GOMAXPROCS = 1
	if res := evaluate(base, cur, defaultOpts); !res.ok() {
		t.Fatalf("single-core host must skip the serial-ratio gate: %v", res.Failures)
	}
}

func TestEvaluateThroughputWarnsByDefault(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.0, 4.0, 8, 500, 200) // both rates below 60% of baseline
	res := evaluate(base, cur, defaultOpts)
	if !res.ok() {
		t.Fatalf("throughput must warn, not fail, by default: %v", res.Failures)
	}
	if len(res.Warnings) != 2 {
		t.Fatalf("want 2 throughput warnings, got %v", res.Warnings)
	}
	if !strings.Contains(res.Warnings[0], "slicer layers") || !strings.Contains(res.Warnings[1], "mech replicates") {
		t.Fatalf("unexpected warnings: %v", res.Warnings)
	}
}

func TestEvaluateThroughputEnforced(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.0, 4.0, 8, 500, 500)
	opts := defaultOpts
	opts.EnforceThroughput = true
	res := evaluate(base, cur, opts)
	if res.ok() || len(res.Failures) != 1 {
		t.Fatalf("want 1 enforced throughput failure, got failures=%v warnings=%v",
			res.Failures, res.Warnings)
	}
}

func TestEvaluateThroughputZeroBaselineSkipped(t *testing.T) {
	base := report(1.0, 4.0, 8, 0, 0)
	cur := report(1.0, 4.0, 8, 0, 0)
	res := evaluate(base, cur, defaultOpts)
	if !res.ok() || len(res.Warnings) != 0 {
		t.Fatalf("zero baselines must be skipped: failures=%v warnings=%v",
			res.Failures, res.Warnings)
	}
}

func TestLoadFixture(t *testing.T) {
	rep, err := load(filepath.Join("testdata", "bench_fixture.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matrix.Keys != 6 || rep.Matrix.ParallelSeconds != 1.25 {
		t.Fatalf("fixture mismatch: %+v", rep.Matrix)
	}
	if rep.Slicer.LayersPerSecond != 1200.5 || rep.Mech.ReplicatesPerSecond != 640 {
		t.Fatalf("fixture throughput mismatch: %+v %+v", rep.Slicer, rep.Mech)
	}
}

func TestLoadRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(path); err == nil || !strings.Contains(err.Error(), "unsupported schema") {
		t.Fatalf("want schema error, got %v", err)
	}
	if _, err := load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}
