package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(parallel, serial float64, procs int, layersPS, repsPS float64) benchReport {
	var r benchReport
	r.Schema = 1
	r.GOMAXPROCS = procs
	r.Matrix.SerialSeconds = serial
	r.Matrix.ParallelSeconds = parallel
	r.Matrix.Workers = 8
	if parallel > 0 {
		r.Matrix.Speedup = serial / parallel
	}
	r.Slicer.LayersPerSecond = layersPS
	r.Mech.ReplicatesPerSecond = repsPS
	// Healthy saturation defaults: two shards beat one on a multi-CPU
	// host with a sane tail. Individual tests mutate these to trip the
	// shard gates.
	r.NumCPU = 8
	r.Serve.Saturation.OneShard = satTopology{Shards: 1, SustainedRPS: 1000, P99Millis: 4.0}
	r.Serve.Saturation.TwoShard = satTopology{Shards: 2, SustainedRPS: 1900, P99Millis: 5.0}
	return r
}

var defaultOpts = gateOpts{
	Tolerance: 0.30, MaxSerialRatio: 1.25, MinMatrixSpeedup: 2.5, AllocTolerance: 0.30,
	SlicerTolerance: 0.30, ThroughputTolerance: 0.40,
	MinShardScale: 1.0, SaturateP99Tolerance: 1.0,
}

func TestEvaluatePasses(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.2, 4.1, 8, 900, 480)
	res := evaluate(base, cur, defaultOpts)
	if !res.ok() || len(res.Warnings) != 0 {
		t.Fatalf("want clean pass, got failures=%v warnings=%v", res.Failures, res.Warnings)
	}
}

func TestEvaluateWallTimeRegression(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.5, 4.0, 8, 1000, 500) // 50% > 30% tolerance
	res := evaluate(base, cur, defaultOpts)
	if res.ok() {
		t.Fatal("want wall-time failure, got pass")
	}
	if !strings.Contains(res.Failures[0], "parallel matrix wall") {
		t.Fatalf("unexpected failure: %q", res.Failures[0])
	}
}

func TestEvaluateSerialRatioGate(t *testing.T) {
	base := report(10.0, 4.0, 8, 1000, 500)
	cur := report(6.0, 4.0, 8, 1000, 500) // parallel 1.5x serial > 1.25x
	res := evaluate(base, cur, defaultOpts)
	if res.ok() {
		t.Fatal("want serial-ratio failure, got pass")
	}
	// Same shape on a single-core host is skipped (with a warning).
	cur.GOMAXPROCS = 1
	if res := evaluate(base, cur, defaultOpts); !res.ok() {
		t.Fatalf("single-core host must skip the serial-ratio gate: %v", res.Failures)
	}
}

// The speedup gate is meaningless when either report ran single-proc;
// benchdiff must skip it with a warning rather than fail or stay silent.
func TestEvaluateSingleProcSkipsSpeedup(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*benchReport)
	}{
		{"baseline gomaxprocs=1", func(r *benchReport) { r.GOMAXPROCS = 1 }},
		{"baseline workers=1", func(r *benchReport) { r.Matrix.Workers = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := report(10.0, 4.0, 8, 1000, 500)
			cur := report(6.0, 4.0, 8, 1000, 500) // would trip the ratio gate
			tc.mut(&base)
			res := evaluate(base, cur, defaultOpts)
			if !res.ok() {
				t.Fatalf("single-proc baseline must skip the speedup gate: %v", res.Failures)
			}
			if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "skipped") {
				t.Fatalf("want one skip warning, got %v", res.Warnings)
			}
		})
	}
	// Single-proc on the current side likewise skips.
	base := report(10.0, 4.0, 8, 1000, 500)
	cur := report(6.0, 4.0, 8, 1000, 500)
	cur.Matrix.Workers = 1
	res := evaluate(base, cur, defaultOpts)
	if !res.ok() || len(res.Warnings) != 1 {
		t.Fatalf("single-proc current must skip with a warning: failures=%v warnings=%v",
			res.Failures, res.Warnings)
	}
}

// A committed single-proc artifact (the shape BENCH_obfuscade.json had
// when produced with GOMAXPROCS=1) must flow through load + evaluate as a
// skip, never a speedup failure.
func TestSingleProcFixtureSkipsSpeedup(t *testing.T) {
	rep, err := load(filepath.Join("testdata", "bench_fixture_singleproc.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOMAXPROCS != 1 || rep.Matrix.Workers != 1 {
		t.Fatalf("fixture is not single-proc: %+v", rep.Matrix)
	}
	// Speedup ~1.0 would fail the ratio gate if it were evaluated.
	res := evaluate(rep, rep, defaultOpts)
	if !res.ok() {
		t.Fatalf("single-proc fixture must not fail the speedup gate: %v", res.Failures)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "skipped") && strings.Contains(w, "single-proc") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a single-proc skip warning, got %v", res.Warnings)
	}
}

// The speedup floor is machine-independent (serial and parallel columns
// come from the same report): a multi-proc pool below the floor fails
// even when the absolute wall times fit the cross-machine tolerance.
func TestEvaluateMinMatrixSpeedupFloor(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.25, 2.0, 8, 1000, 500) // 1.6x < 2.5x floor, ratio gate fine
	res := evaluate(base, cur, defaultOpts)
	if res.ok() {
		t.Fatal("want speedup-floor failure, got pass")
	}
	if !strings.Contains(res.Failures[0], "below the 2.50x floor") {
		t.Fatalf("unexpected failure: %q", res.Failures[0])
	}
	// A single-proc report skips the floor along with the rest of the
	// pool-sanity gate — a 1-CPU host cannot reach any speedup.
	cur.GOMAXPROCS = 1
	if res := evaluate(base, cur, defaultOpts); !res.ok() {
		t.Fatalf("single-proc report must skip the speedup floor: %v", res.Failures)
	}
	// GOMAXPROCS env-pinned above the physical core count (the
	// baseline-pinning recipe): min(num_cpu, workers) below the floor
	// must skip with a warning, not fail an unreachable target.
	cur.GOMAXPROCS = 8
	cur.NumCPU = 1
	res = evaluate(base, cur, defaultOpts)
	if !res.ok() {
		t.Fatalf("capacity-bounded host must skip the speedup floor: %v", res.Failures)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "cannot reach") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a capacity-skip warning, got %v", res.Warnings)
	}
	cur.NumCPU = 8
	// MinMatrixSpeedup 0 disables the gate entirely.
	cur.GOMAXPROCS = 8
	opts := defaultOpts
	opts.MinMatrixSpeedup = 0
	if res := evaluate(base, cur, opts); !res.ok() {
		t.Fatalf("zero floor must disable the gate: %v", res.Failures)
	}
}

// The allocation-budget gate is warn-only: a >30% allocs/key growth
// produces a warning pointing at -memprofile, never a failure, and a
// baseline without the field pins rather than gates.
func TestEvaluateAllocBudgetWarnOnly(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	base.Matrix.AllocsPerKey = 50_000
	cur := report(1.0, 4.0, 8, 1000, 500)
	cur.Matrix.AllocsPerKey = 70_000 // +40% > 30% tolerance
	res := evaluate(base, cur, defaultOpts)
	if !res.ok() {
		t.Fatalf("alloc growth must not fail: %v", res.Failures)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "allocs/key") ||
		!strings.Contains(res.Warnings[0], "-memprofile") {
		t.Fatalf("want one allocs/key warning naming -memprofile, got %v", res.Warnings)
	}
	// Within tolerance: silent.
	cur.Matrix.AllocsPerKey = 60_000
	if res := evaluate(base, cur, defaultOpts); len(res.Warnings) != 0 {
		t.Fatalf("within-tolerance allocs must be silent: %v", res.Warnings)
	}
	// Pre-field baseline: pin, don't gate.
	base.Matrix.AllocsPerKey = 0
	cur.Matrix.AllocsPerKey = 70_000
	res = evaluate(base, cur, defaultOpts)
	if !res.ok() || len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "pinning current") {
		t.Fatalf("want one pin warning, got failures=%v warnings=%v", res.Failures, res.Warnings)
	}
	// Neither side measured (pre-field reports on both ends): silent.
	cur.Matrix.AllocsPerKey = 0
	if res := evaluate(base, cur, defaultOpts); len(res.Warnings) != 0 {
		t.Fatalf("unmeasured allocs must be silent: %v", res.Warnings)
	}
}

// Slicer layers/s is an enforced gate: a regression beyond tolerance
// fails even though mech throughput only warns.
func TestEvaluateSlicerGateEnforced(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.0, 4.0, 8, 500, 200) // both rates below 60% of baseline
	res := evaluate(base, cur, defaultOpts)
	if res.ok() || len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "slicer layers") {
		t.Fatalf("want 1 slicer failure, got failures=%v", res.Failures)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "mech replicates") {
		t.Fatalf("want 1 mech warning, got %v", res.Warnings)
	}
	// Within tolerance both ways stays clean.
	ok := evaluate(base, report(1.0, 4.0, 8, 750, 400), defaultOpts)
	if !ok.ok() || len(ok.Warnings) != 0 {
		t.Fatalf("within-tolerance run must be clean: failures=%v warnings=%v",
			ok.Failures, ok.Warnings)
	}
}

func TestEvaluateThroughputEnforced(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.0, 4.0, 8, 1000, 200)
	opts := defaultOpts
	opts.EnforceThroughput = true
	res := evaluate(base, cur, opts)
	if res.ok() || len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "mech replicates") {
		t.Fatalf("want 1 enforced mech failure, got failures=%v warnings=%v",
			res.Failures, res.Warnings)
	}
}

func TestEvaluateThroughputZeroBaselineSkipped(t *testing.T) {
	base := report(1.0, 4.0, 8, 0, 0)
	cur := report(1.0, 4.0, 8, 0, 0)
	res := evaluate(base, cur, defaultOpts)
	if !res.ok() || len(res.Warnings) != 0 {
		t.Fatalf("zero baselines must be skipped: failures=%v warnings=%v",
			res.Failures, res.Warnings)
	}
}

// A metric that exists in the current report but not the baseline (the
// shape every new benchmark has on its first CI run) must "pin, not
// gate": one warning naming the pinned value, never a NaN ratio, a
// silent pass, or — for the wall-time gate, whose limit would be 0 — a
// guaranteed false failure.
func TestEvaluateZeroBaselinePinsNotGates(t *testing.T) {
	base := report(1.0, 4.0, 8, 0, 0)
	cur := report(1.0, 4.0, 8, 1000, 500)
	res := evaluate(base, cur, defaultOpts)
	if !res.ok() {
		t.Fatalf("zero baselines must not fail: %v", res.Failures)
	}
	if len(res.Warnings) != 2 {
		t.Fatalf("want 2 pin warnings (slicer, mech), got %v", res.Warnings)
	}
	for _, w := range res.Warnings {
		if !strings.Contains(w, "pinning current") || !strings.Contains(w, "not gating") {
			t.Fatalf("warning %q does not describe pin-don't-gate", w)
		}
	}

	// Wall-time specifically: baseline 0 used to derive limit 0 and fail
	// every run; it must now warn and pass.
	base2 := report(0, 0, 8, 1000, 500)
	base2.Matrix.Workers = 8
	cur2 := report(1.0, 4.0, 8, 1000, 500)
	res2 := evaluate(base2, cur2, defaultOpts)
	for _, f := range res2.Failures {
		if strings.Contains(f, "parallel matrix wall") {
			t.Fatalf("zero wall-time baseline produced a false failure: %v", res2.Failures)
		}
	}
	found := false
	for _, w := range res2.Warnings {
		if strings.Contains(w, "parallel matrix wall") && strings.Contains(w, "pinning") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a wall-time pin warning, got %v", res2.Warnings)
	}

	// A p99 with no baseline likewise pins.
	base3 := report(1.0, 4.0, 8, 1000, 500)
	base3.Serve.Saturation.TwoShard.P99Millis = 0
	cur3 := report(1.0, 4.0, 8, 1000, 500)
	res3 := evaluate(base3, cur3, defaultOpts)
	if !res3.ok() {
		t.Fatalf("zero p99 baseline must not fail: %v", res3.Failures)
	}
	found = false
	for _, w := range res3.Warnings {
		if strings.Contains(w, "warm p99") && strings.Contains(w, "pinning") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a p99 pin warning, got %v", res3.Warnings)
	}
}

// Under -require-multiproc the single-proc skip becomes a failure: the
// CI bench environment promises GOMAXPROCS>1, so a single-proc report
// there means the environment itself regressed.
func TestEvaluateRequireMultiProcFailsSingleProc(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.0, 4.0, 8, 1000, 500)
	cur.GOMAXPROCS = 1
	opts := defaultOpts
	opts.RequireMultiProc = true
	res := evaluate(base, cur, opts)
	if res.ok() {
		t.Fatal("require-multiproc must fail a single-proc report")
	}
	found := false
	for _, f := range res.Failures {
		if strings.Contains(f, "multi-proc required") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a multi-proc-required failure, got %v", res.Failures)
	}
}

// The shard-scale gate compares the two saturation topologies inside the
// current report: two GOMAXPROCS=1 shards must beat one on a multi-CPU
// host, and the gate must skip (not fail) on a 1-CPU host where the
// comparison is physically meaningless.
func TestEvaluateShardScaleGate(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.0, 4.0, 8, 1000, 500)
	cur.Serve.Saturation.TwoShard.SustainedRPS = 950 // below one-shard's 1000
	res := evaluate(base, cur, defaultOpts)
	if res.ok() || !strings.Contains(res.Failures[0], "does not beat one shard") {
		t.Fatalf("want shard-scale failure, got failures=%v", res.Failures)
	}

	cur.NumCPU = 1
	res = evaluate(base, cur, defaultOpts)
	if !res.ok() {
		t.Fatalf("1-CPU host must skip the shard-scale gate: %v", res.Failures)
	}
	// A 1-CPU host also trips the speedup-floor capacity skip.
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "shard-scale gate skipped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a shard-scale skip warning, got %v", res.Warnings)
	}
}

// A current report with no saturation section warns by default but fails
// under -require-multiproc: CI must not silently lose the benchmark.
func TestEvaluateMissingSaturation(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.0, 4.0, 8, 1000, 500)
	cur.Serve.Saturation.OneShard = satTopology{}
	cur.Serve.Saturation.TwoShard = satTopology{}
	res := evaluate(base, cur, defaultOpts)
	if !res.ok() || len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "no saturation data") {
		t.Fatalf("want one no-data warning, got failures=%v warnings=%v", res.Failures, res.Warnings)
	}
	opts := defaultOpts
	opts.RequireMultiProc = true
	res = evaluate(base, cur, opts)
	if res.ok() || !strings.Contains(res.Failures[0], "no saturation data") {
		t.Fatalf("require-multiproc must fail on missing saturation: %v", res.Failures)
	}
}

// The saturation tail-latency gate fails when the two-shard warm p99
// blows past baseline * (1 + tolerance), and skips when the baseline
// predates the saturation benchmark.
func TestEvaluateSaturateP99Gate(t *testing.T) {
	base := report(1.0, 4.0, 8, 1000, 500)
	cur := report(1.0, 4.0, 8, 1000, 500)
	cur.Serve.Saturation.TwoShard.P99Millis = base.Serve.Saturation.TwoShard.P99Millis*2 + 1
	res := evaluate(base, cur, defaultOpts)
	if res.ok() || !strings.Contains(res.Failures[0], "warm p99") {
		t.Fatalf("want p99 failure, got failures=%v", res.Failures)
	}

	base.Serve.Saturation.TwoShard.P99Millis = 0 // pre-saturation baseline
	res = evaluate(base, cur, defaultOpts)
	if !res.ok() {
		t.Fatalf("zero-p99 baseline must skip the gate: %v", res.Failures)
	}
}

func TestLoadFixture(t *testing.T) {
	rep, err := load(filepath.Join("testdata", "bench_fixture.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matrix.Keys != 6 || rep.Matrix.ParallelSeconds != 1.25 {
		t.Fatalf("fixture mismatch: %+v", rep.Matrix)
	}
	if rep.Slicer.LayersPerSecond != 1200.5 || rep.Mech.ReplicatesPerSecond != 640 {
		t.Fatalf("fixture throughput mismatch: %+v %+v", rep.Slicer, rep.Mech)
	}
}

func TestLoadRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(path); err == nil || !strings.Contains(err.Error(), "unsupported schema") {
		t.Fatalf("want schema error, got %v", err)
	}
	if _, err := load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}
