#!/usr/bin/env bash
# Cluster smoke test for the sharded serve tier: boot two `obfuscade
# serve` shards and one `-route-to` router in fresh processes, and
# assert
#
#   - 12 distinct jobs submitted through the router all complete, and
#     the per-shard obfuscade_serve_jobs_completed_total counters sum to
#     exactly 12 with both shards doing work
#   - placement is key-stable: resubmitting all 12 jobs yields 12 cache
#     hits and zero new pipeline completions on either shard — every key
#     was routed back to the shard that computed it
#   - after SIGKILLing one shard the router ejects it (healthz drops to
#     one healthy shard, router.shard.ejected fires) and every key is
#     still servable through failover to the survivor
#   - a burst past the survivor's -max-queue sheds 429s whose
#     Retry-After header passes through the router untouched, and every
#     shed still carries an X-Request-Id
#   - the router's /cluster/metrics.json federated view sums the
#     per-shard counters exactly (shard hit counters add up to the
#     cluster total)
#   - a client-supplied X-Request-ID is echoed on the routed response
#     and appears with one shared trace ID in both the router's and the
#     owning shard's NDJSON access logs
#   - the three processes' /trace.ndjson journals merge (obfuscade
#     trace-merge) into one Chrome trace in which the shard's serve/job
#     span parents under the router's proxy span via the propagated
#     trace context
#
# Fresh processes mean each shard has its own metrics registry and
# trace recorder, so the per-shard counter values are exact and the
# merged trace is a true multi-process stitch (in-process tests share
# the global registry and cannot assert this).
#
# Set CLUSTER_TRACE_OUT to keep the merged Chrome trace (CI uploads it
# as an artifact); by default it lands in the temp workdir and is
# deleted with it.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
# A single trap owns every process this script starts: shards, the
# router, and any still-running burst curls. Mid-script assertion
# failures (set -e) must never leak a background server.
cleanup() {
    local running
    running="$(jobs -pr)"
    if [ -n "$running" ]; then
        # shellcheck disable=SC2086
        kill $running 2>/dev/null || true
    fi
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "smoke_cluster: FAIL: $*" >&2; exit 1; }

go build -o "$workdir/obfuscade" ./cmd/obfuscade

start_node() { # start_node <addr-file> <extra flags...>; sets last_pid
    local addr_file="$1"; shift
    "$workdir/obfuscade" serve -addr 127.0.0.1:0 -addr-file "$addr_file" "$@" &
    last_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$addr_file" ] && break
        kill -0 "$last_pid" 2>/dev/null || fail "node died during startup ($addr_file)"
        sleep 0.1
    done
    [ -s "$addr_file" ] || fail "node never wrote its address ($addr_file)"
}

metric() { # metric <host:port> <counter name> — 0 when absent
    local v
    v="$(curl -sf "http://$1/metrics" | awk -v n="$2" '$1 == n {print $2}')"
    echo "${v:-0}"
}

start_node "$workdir/s1.addr" -max-queue 1 -access-log "$workdir/s1.access.ndjson"
s1_pid=$last_pid
s1="$(tr -d '[:space:]' < "$workdir/s1.addr")"
start_node "$workdir/s2.addr" -max-queue 1 -access-log "$workdir/s2.access.ndjson"
s2="$(tr -d '[:space:]' < "$workdir/s2.addr")"
start_node "$workdir/router.addr" -route-to "$s1,$s2" -probe-interval 100ms \
    -access-log "$workdir/router.access.ndjson"
router="http://$(tr -d '[:space:]' < "$workdir/router.addr")"

submit() { # submit <seed> — prints the response body, fails on curl error
    curl -sf -X POST -H 'Content-Type: application/json' \
        -d "{\"seed\": $1}" "$router/jobs?wait=1"
}

# ---- placement: every key computes on exactly one shard --------------

seeds="$(seq 201 212)"
first_id=""
for seed in $seeds; do
    r="$(submit "$seed")"
    [ "$(echo "$r" | jq -r .state)" = done ] || fail "seed $seed: $r"
    [ "$(echo "$r" | jq -r .outcome)" = miss ] || fail "seed $seed must be a cold miss: $r"
    [ -n "$first_id" ] || first_id="$(echo "$r" | jq -r .id)"
done

c1="$(metric "$s1" obfuscade_serve_jobs_completed_total)"
c2="$(metric "$s2" obfuscade_serve_jobs_completed_total)"
[ $((c1 + c2)) -eq 12 ] || fail "completions across shards = $c1 + $c2, want 12"
[ "$c1" -ge 1 ] && [ "$c2" -ge 1 ] \
    || fail "placement sent all 12 keys to one shard ($c1 / $c2); the ring is not spreading"

# Key-stable placement: resubmitting every key must hit the cache of
# the shard that computed it. Any placement drift shows up as a fresh
# pipeline completion.
for seed in $seeds; do
    r="$(submit "$seed")"
    [ "$(echo "$r" | jq -r .outcome)" = hit ] || fail "seed $seed resubmission must hit: $r"
done
c1_after="$(metric "$s1" obfuscade_serve_jobs_completed_total)"
c2_after="$(metric "$s2" obfuscade_serve_jobs_completed_total)"
[ "$c1_after" -eq "$c1" ] && [ "$c2_after" -eq "$c2" ] \
    || fail "resubmission recomputed: completions $c1/$c2 -> $c1_after/$c2_after"
h1="$(metric "$s1" obfuscade_cache_hits_total)"
h2="$(metric "$s2" obfuscade_cache_hits_total)"
[ $((h1 + h2)) -eq 12 ] || fail "cache hits across shards = $h1 + $h2, want 12"

# ---- federation: /cluster/metrics.json sums the shards exactly -------

fed="$(curl -sf "$router/cluster/metrics.json")"
shard_hits="$(echo "$fed" | jq '[.shards[].counters[]? | select(.name == "cache.hits") | .value] | add // 0')"
cluster_hits="$(echo "$fed" | jq '[.cluster.counters[]? | select(.name == "cache.hits") | .value] | add // 0')"
[ "$shard_hits" -eq 12 ] || fail "federated per-shard cache.hits sum to $shard_hits, want 12"
[ "$cluster_hits" -eq 12 ] || fail "federated cluster cache.hits = $cluster_hits, want 12"
[ "$(echo "$fed" | jq -r .stale)" = false ] || fail "federated scrape reports stale with both shards alive: $fed"
[ "$(echo "$fed" | jq '.shards | length')" -eq 2 ] || fail "federated view missing a shard: $fed"
# Buffer before grepping: grep -q closing the pipe early would fail
# curl under pipefail.
prom="$(curl -sf "$router/cluster/metrics")"
echo "$prom" | grep -q '^obfuscade_cluster_cache_hits_total 12$' \
    || fail "Prometheus federation lacks obfuscade_cluster_cache_hits_total 12"

# ---- trace propagation: one request ID, one trace, two access logs ---

traced="$(curl -sf -D "$workdir/traced.hdr" -X POST \
    -H 'Content-Type: application/json' -H 'X-Request-ID: smoke-req-1' \
    -d '{"seed": 999}' "$router/jobs?wait=1")"
[ "$(echo "$traced" | jq -r .state)" = done ] || fail "traced job: $traced"
traced_key="$(echo "$traced" | jq -r .id)"
grep -qi '^x-request-id: smoke-req-1' "$workdir/traced.hdr" \
    || fail "router did not echo X-Request-ID: $(cat "$workdir/traced.hdr")"

router_trace="$(jq -r 'select(.request_id == "smoke-req-1") | .trace' "$workdir/router.access.ndjson" | head -1)"
[ -n "$router_trace" ] || fail "router access log has no entry for smoke-req-1"
shard_trace="$(jq -r 'select(.request_id == "smoke-req-1") | .trace' \
    "$workdir/s1.access.ndjson" "$workdir/s2.access.ndjson" | sort -u)"
[ "$(echo "$shard_trace" | wc -l)" -eq 1 ] && [ -n "$shard_trace" ] \
    || fail "want exactly one shard access-log trace for smoke-req-1, got: $shard_trace"
[ "$shard_trace" = "$router_trace" ] \
    || fail "trace ID diverged across tiers: router=$router_trace shard=$shard_trace"

# ---- trace merge: three journals, one Chrome trace, linked spans -----

curl -sf "$router/trace.ndjson" > "$workdir/router.ndjson" || fail "router /trace.ndjson"
curl -sf "http://$s1/trace.ndjson" > "$workdir/s1.ndjson" || fail "s1 /trace.ndjson"
curl -sf "http://$s2/trace.ndjson" > "$workdir/s2.ndjson" || fail "s2 /trace.ndjson"
trace_out="${CLUSTER_TRACE_OUT:-$workdir/cluster_trace.json}"
"$workdir/obfuscade" trace-merge -out "$trace_out" \
    "router=$workdir/router.ndjson" "shard-0=$workdir/s1.ndjson" "shard-1=$workdir/s2.ndjson" \
    || fail "trace-merge failed"
# The shard's serve/job span for the traced key must name a parent span
# that exists in the router lane under the same trace ID.
jq -e --arg key "$traced_key" '
    first(.traceEvents[] | select(.cat == "serve" and .name == "job" and .args.key == $key)) as $job
    | first(.traceEvents[] | select(.cat == "router" and .name == "jobs"
          and .args.trace == $job.args.trace and .args.span == $job.args.parent))
    | (.args.trace | length) > 0
' "$trace_out" > /dev/null \
    || fail "merged trace does not link the shard job span under the router proxy span"

# ---- sanitize through the router: placement + cache + artifact -------

# The router forwards POST /sanitize by the same content-addressed key
# the owning shard caches under, so the identical upload pair is a miss
# then a hit, and the artifact reads back through the router by digest.
curl -sf "$router/jobs/$first_id/stl" > "$workdir/cluster_part.stl" \
    || fail "fetching an STL body for sanitize"
san1="$(curl -sf -X POST --data-binary "@$workdir/cluster_part.stl" "$router/sanitize")"
[ "$(echo "$san1" | jq -r .outcome)" = miss ] || fail "router sanitize cold: $san1"
san_id="$(echo "$san1" | jq -r .id)"
san_sha="$(echo "$san1" | jq -r .stl_sha256)"
san2="$(curl -sf -X POST --data-binary "@$workdir/cluster_part.stl" "$router/sanitize")"
[ "$(echo "$san2" | jq -r .outcome)" = hit ] || fail "router sanitize resubmission must hit: $san2"
[ "$(echo "$san2" | jq -r .id)" = "$san_id" ] \
    || fail "sanitize id drifted across submissions: $san1 vs $san2"
# Exactly one shard computed it: one sanitize completion across the ring.
sc1="$(metric "$s1" obfuscade_serve_sanitize_completed_total)"
sc2="$(metric "$s2" obfuscade_serve_sanitize_completed_total)"
[ $((sc1 + sc2)) -eq 1 ] || fail "sanitize completions across shards = $sc1 + $sc2, want 1"
curl -sf "$router/sanitize/$san_id/stl" > "$workdir/cluster_clean.stl" \
    || fail "fetching sanitized artifact via router"
got_sha="$(sha256sum "$workdir/cluster_clean.stl" | awk '{print $1}')"
[ "$got_sha" = "$san_sha" ] \
    || fail "routed sanitize artifact sha $got_sha != advertised $san_sha"

# ---- failover: kill a shard, the cluster keeps serving ---------------

kill -9 "$s1_pid"

# The router's health prober (100ms period) ejects the dead shard.
healthy=""
for _ in $(seq 1 50); do
    healthy="$(curl -s "$router/healthz" | jq -r '.healthy // 0')"
    [ "$healthy" = 1 ] && break
    sleep 0.1
done
[ "$healthy" = 1 ] || fail "router never ejected the killed shard (healthy=$healthy)"
ejected="$(metric "${router#http://}" obfuscade_router_shard_ejected_total)"
[ "$ejected" -ge 1 ] || fail "router.shard.ejected never fired"

# Every key is still servable: keys owned by the dead shard fail over
# to the survivor (recomputed there), the rest stay cache hits.
for seed in $seeds; do
    r="$(submit "$seed")"
    [ "$(echo "$r" | jq -r .state)" = done ] || fail "seed $seed after failover: $r"
done
# Reads fail over too: the first job's STL is reachable whichever shard
# originally owned it.
curl -sf "$router/jobs/$first_id/stl" -o /dev/null \
    || fail "STL read for $first_id failed after shard death"

# ---- shed pass-through: 429 + Retry-After survive the router ---------

burst_pids=()
for i in $(seq 1 8); do
    curl -s -o "$workdir/shed_body_$i" -D "$workdir/shed_hdr_$i" \
        -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
        -d "{\"seed\": $((300 + i))}" "$router/jobs?wait=1" > "$workdir/shed_code_$i" &
    burst_pids+=($!)
done
wait "${burst_pids[@]}"
shed=0 served=0
for i in $(seq 1 8); do
    code="$(cat "$workdir/shed_code_$i")"
    case "$code" in
    429)
        grep -qi '^Retry-After:' "$workdir/shed_hdr_$i" \
            || fail "429 through the router lost Retry-After: $(cat "$workdir/shed_hdr_$i")"
        grep -qi '^X-Request-Id:' "$workdir/shed_hdr_$i" \
            || fail "429 through the router lost X-Request-Id: $(cat "$workdir/shed_hdr_$i")"
        shed=$((shed + 1))
        ;;
    200) served=$((served + 1)) ;;
    *) fail "burst job $i: unexpected status $code: $(cat "$workdir/shed_body_$i")" ;;
    esac
done
[ "$shed" -ge 1 ] || fail "burst of 8 against -max-queue 1 shed nothing through the router"
[ "$served" -ge 1 ] || fail "shedding served nothing at all"

echo "smoke_cluster: OK (placement $c1/$c2, 12 stable hits, federated sum $cluster_hits, trace $router_trace spans both tiers, failover after kill, $shed shed / $served served)"
