// Package obfuscade is a full reproduction of "ObfusCADe: Obfuscating
// Additive Manufacturing CAD Models Against Counterfeiting" (Gupta, Chen,
// Tsoutsos, Maniatakos — DAC 2017).
//
// The implementation lives under internal/: a CAD kernel (brep), STL
// tessellation and file I/O (tessellate, stl), a slicer and G-code stack
// (slicer, gcode), a virtual FDM/PolyJet printer (printer, voxel), FEA
// and tensile-testing substrates (fea, mech), the cloud-aware supply
// chain with executable attacks and mitigations (supplychain), acoustic
// side-channel simulation (sidechannel), and the ObfusCADe protection
// methodology itself (core). The experiments package regenerates every
// table and figure of the paper; bench_test.go in this directory times
// each of them.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// modelling decisions, and EXPERIMENTS.md for paper-vs-measured results.
package obfuscade
