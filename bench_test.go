package obfuscade_test

import (
	"context"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/cache"
	"obfuscade/internal/cache/diskstore"
	"obfuscade/internal/core"
	"obfuscade/internal/experiments"
	"obfuscade/internal/fea"
	"obfuscade/internal/mech"
	"obfuscade/internal/obs"
	"obfuscade/internal/printer"
	"obfuscade/internal/serve"
	"obfuscade/internal/slicer"
	"obfuscade/internal/stl"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/tessellate"
)

// Macro benchmarks: one per table and figure of the paper's evaluation.
// Each regenerates the artifact end to end; the per-experiment index in
// DESIGN.md §5 maps benchmarks to modules.

func BenchmarkTable1RiskRegistry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2TensileProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, groups, err := experiments.Table2(5, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.Table2ShapeCheck(groups); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(groups[0].FailureStrain.Mean, "splineXY-strain")
		b.ReportMetric(groups[3].FailureStrain.Mean, "intactXZ-strain")
	}
}

func BenchmarkTable3EmbeddedSphere(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 4 {
			b.Fatal("table 3 incomplete")
		}
	}
}

func BenchmarkFig1ProcessChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2AttackTaxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig2(); len(out) == 0 {
			b.Fatal("empty taxonomy")
		}
	}
}

func BenchmarkFig3ArtifactStages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4TessellationGaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, _, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series.Y[0], "coarse-gap-mm")
		b.ReportMetric(series.Y[2], "custom-gap-mm")
	}
}

func BenchmarkFig5STLResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Orientations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7XZDiscontinuity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8XYSurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9StressConcentration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10SphereArtifacts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSideChannelReconstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SideChannelLeakage(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeySpaceAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rep, err := experiments.KeySpace()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.GoodKeys), "good-keys")
	}
}

func BenchmarkServiceLife(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ServiceLife(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTLTheft(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.STLTheft(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMultiSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMultiSplit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolyJetReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PolyJetReplication(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHealing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHealing(); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro benchmarks: the substrate hot paths.

func splitBar(b *testing.B) *brep.Part {
	b.Helper()
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		b.Fatal(err)
	}
	s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	if err := brep.SplitBySpline(p, "bar", s); err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkTessellateSplitBarFine(b *testing.B) {
	part := splitBar(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tessellate.Tessellate(part, tessellate.Fine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTLEncodeDecode(b *testing.B) {
	part := splitBar(b)
	m, err := tessellate.Tessellate(part, tessellate.Fine)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := stl.Marshal(m, stl.Binary, "bar")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stl.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSliceSplitBarXY(b *testing.B) {
	part := splitBar(b)
	m, err := tessellate.Tessellate(part, tessellate.Fine)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slicer.Slice(m, slicer.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVirtualPrintSplitBar(b *testing.B) {
	part := splitBar(b)
	m, err := tessellate.Tessellate(part, tessellate.Coarse)
	if err != nil {
		b.Fatal(err)
	}
	sliced, err := slicer.Slice(m, slicer.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := printer.Print(sliced, printer.DimensionElite(), printer.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFEASplitTip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := fea.SplitTipAnalysis(33, 6, 3.2, 2000, 0.35, 1.5, 60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTensileTestGroup(b *testing.B) {
	spec := mech.Specimen{Mat: mech.ABS(mech.XY), SeamPresent: true, SeamQuality: 0.35, Kt: 2.6}
	for i := 0; i < b.N; i++ {
		if _, err := mech.TestGroup("bench", spec, 5, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullPipelineCoarseXY(b *testing.B) {
	part := splitBar(b)
	pl := supplychain.DefaultPipeline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Execute(part); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtectAndManufacture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prot, err := core.NewProtectedBar("bar", false)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Manufacture(prot, prot.Manifest.Key, printer.DimensionElite())
		if err != nil {
			b.Fatal(err)
		}
		if res.Quality.Grade != core.Good {
			b.Fatalf("correct key grade = %v", res.Quality.Grade)
		}
	}
}

func BenchmarkNDTInspection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NDT(); err != nil {
			b.Fatal(err)
		}
	}
}

// Serial-vs-parallel wall time for the full quality matrix. Run both with
//
//	go test -bench 'BenchmarkQualityMatrix' -run '^$' .
//
// and compare ns/op; on a 1-worker pool the parallel variant must also be
// entry-for-entry identical (asserted in internal/core's determinism test).

func benchQualityMatrix(b *testing.B, workers int) {
	prot, err := core.NewProtectedBar("bar", false)
	if err != nil {
		b.Fatal(err)
	}
	prof := printer.DimensionElite()
	layers0 := obs.Default().Counter("slicer.layers.sliced").Value()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, err := core.QualityMatrixWorkers(prot, prof, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(entries) != 6 {
			b.Fatalf("matrix entries = %d", len(entries))
		}
	}
	b.StopTimer()
	// Throughput from the obs counters: the layer delta over the timed
	// region divided by the measured wall time (the same counters feed the
	// BENCH_obfuscade.json artifact).
	layers := obs.Default().Counter("slicer.layers.sliced").Value() - layers0
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(layers)/sec, "layers/s")
	}
}

func BenchmarkQualityMatrixSerial(b *testing.B)   { benchQualityMatrix(b, 1) }
func BenchmarkQualityMatrixParallel(b *testing.B) { benchQualityMatrix(b, 0) }

// Cold-vs-cached job service. Cold gives every iteration a fresh seed so
// each request misses and runs the full pipeline; Cached replays one
// request against a warm cache. Compare ns/op:
//
//	go test -bench 'BenchmarkJobService' -run '^$' .
//
// The cached path must be orders of magnitude faster (it copies nothing
// and computes one SHA-256 over the canonical request).

func BenchmarkJobServiceCold(b *testing.B) {
	svc := serve.NewService(0, printer.DimensionElite())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Do(context.Background(), serve.Request{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != cache.Miss {
			b.Fatalf("iteration %d outcome = %s, want miss", i, res.Outcome)
		}
	}
}

func BenchmarkJobServiceCached(b *testing.B) {
	svc := serve.NewService(0, printer.DimensionElite())
	req := serve.Request{Seed: 1}
	warm, err := svc.Do(context.Background(), req)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Do(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != cache.Hit || res.STLSHA256 != warm.STLSHA256 {
			b.Fatalf("iteration %d: outcome %s digest %s", i, res.Outcome, res.STLSHA256)
		}
	}
}

// Disk-tier replay: a 1-byte memory budget keeps the value out of the
// LRU, so every iteration misses memory and restores the artifact from
// the content-addressed disk store — the restart-warm path. Compare
// against Cold (full pipeline) and Cached (memory hit):
//
//	go test -bench 'BenchmarkJobService' -run '^$' .
func BenchmarkJobServiceDiskHit(b *testing.B) {
	store, err := diskstore.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	svc := serve.NewTieredService(1, printer.DimensionElite(), store)
	req := serve.Request{Seed: 1}
	warm, err := svc.Do(context.Background(), req)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Do(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != cache.DiskHit || res.STLSHA256 != warm.STLSHA256 {
			b.Fatalf("iteration %d: outcome %s digest %s", i, res.Outcome, res.STLSHA256)
		}
	}
}
