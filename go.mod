module obfuscade

go 1.22
